package esl

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// exceptionSchema is the pseudo-row bound under the alias "exception" when
// projecting EXCEPTION_SEQ / CLEVEL_SEQ output, so queries can select
// exception.level, exception.reason and exception.at.
var exceptionSchema = stream.MustSchema("exception",
	stream.Field{Name: "level"},
	stream.Field{Name: "reason"},
	stream.Field{Name: "at"})

// eventOp runs one temporal event query: a core matcher plus projection.
type eventOp struct {
	e   *Engine
	q   *Query
	sel *Select

	def      core.Def
	kindName string // SEQ, EXCEPTION_SEQ, CLEVEL_SEQ
	seq      *core.Matcher
	exc      *core.ExceptionMatcher
	aliases  []string // step aliases in order
	// stepIdx / lowerAliases are the compile-time index used by
	// BindMatchIndexed so per-match binding allocates nothing.
	stepIdx      map[string]int
	lowerAliases []string

	proj *projection
	// fastProj short-circuits projection when every select item is a plain
	// column on a non-star step (nil otherwise).
	fastProj *fastProj
	// starItemAlias is set when the projection references a star step's
	// individual tuples (the multi-return form of §3.1.2).
	starItemAlias string
	starItemStep  int
	// levelFilter gates CLEVEL_SEQ emissions (e.g. "< 3").
	levelFilter func(level int) bool

	// merge classifies the query for the plan-merging layer (SEQ only; nil
	// for the exception kinds). filterTiers records each step's pushed-down
	// filter conjuncts' closure-compilation tiers for EXPLAIN.
	merge       *mergeSpec
	filterTiers [][]string

	// resolved caches the matcher's alias→step resolution per reader alias
	// slice (reader slices are stable for the life of a query, so slice
	// identity is the cache key).
	resolved []resolvedEntry
}

type resolvedEntry struct {
	aliases []string
	res     *core.Resolved
}

// stepConjunct is one classified WHERE conjunct of a SEQ-family query: the
// step aliases it references, whether it uses the previous operator, and the
// latest step (evalAt) at which all references are bound.
type stepConjunct struct {
	expr    Expr
	refs    map[string]bool // lower aliases referenced
	hasPrev bool
	evalAt  int
}

// buildPredClosure compiles the residual conjunct lists into the matcher's
// bind-time predicate. Conjuncts assigned to steps at or beyond upTo are
// skipped — the plan-merging layer rebuilds a shared prefix predicate with
// upTo = len(steps)-1 and moves the final step's residuals into per-member
// acceptance checks.
func buildPredClosure(funcs *FuncRegistry, def *core.Def, idx map[string]int, lowers []string,
	predsByStep [][]stepConjunct, upTo int) func(*core.Match, int, *stream.Tuple) bool {
	return func(partial *core.Match, stepIdx int, t *stream.Tuple) bool {
		if stepIdx >= upTo {
			return true
		}
		for _, cl := range predsByStep[stepIdx] {
			env := getEnv(funcs)
			env.BindMatchIndexed(partial, def, idx, lowers)
			if cl.hasPrev {
				env.bindStarTupleLower(lowers[stepIdx], t, partial.Last(stepIdx))
				// The previous-operator constraint only applies from
				// the second tuple of a run.
				if partial.Last(stepIdx) == nil {
					putEnv(env)
					continue
				}
			} else {
				env.bindTupleLower(lowers[stepIdx], t)
			}
			ok, known, err := env.EvalBool(cl.expr)
			putEnv(env)
			if err != nil || !ok || !known {
				return false
			}
		}
		return true
	}
}

// compileEventQuery plans a SELECT whose WHERE contains a SEQ-family
// operator.
func (e *Engine) compileEventQuery(sel *Select, se *SeqExpr, q *Query) (queryOp, map[string][]string, error) {
	op := &eventOp{e: e, q: q, sel: sel, kindName: se.Kind}

	// Map FROM aliases to stream schemas; every operator argument must be
	// a FROM alias naming a stream.
	aliasStream := map[string]string{} // lower alias -> stream name
	aliasSchemaMap := map[string]*stream.Schema{}
	var schemas []aliasSchema
	for _, f := range sel.From {
		si, ok := e.streams[strings.ToLower(f.Source)]
		if !ok {
			return nil, nil, fmt.Errorf("esl: %s queries need stream sources; %q is not a stream", se.Kind, f.Source)
		}
		if f.Window != nil {
			return nil, nil, fmt.Errorf("esl: windows on FROM items are not combined with %s; put the window on the operator (OVER [...])", se.Kind)
		}
		key := strings.ToLower(f.Alias)
		if _, dup := aliasStream[key]; dup {
			return nil, nil, fmt.Errorf("esl: duplicate FROM alias %q", f.Alias)
		}
		aliasStream[key] = f.Source
		aliasSchemaMap[key] = si.schema
		schemas = append(schemas, aliasSchema{alias: f.Alias, schema: si.schema})
	}

	// Build pattern steps from the operator arguments.
	stepOf := map[string]int{}
	for i, arg := range se.Args {
		key := strings.ToLower(arg.Alias)
		if _, ok := aliasStream[key]; !ok {
			return nil, nil, fmt.Errorf("esl: %s argument %q is not a FROM alias", se.Kind, arg.Alias)
		}
		if _, dup := stepOf[key]; dup {
			return nil, nil, fmt.Errorf("esl: alias %q appears twice in %s", arg.Alias, se.Kind)
		}
		stepOf[key] = i
		op.def.Steps = append(op.def.Steps, core.Step{Alias: arg.Alias, Star: arg.Star})
		op.aliases = append(op.aliases, arg.Alias)
		op.lowerAliases = append(op.lowerAliases, key)
	}
	op.stepIdx = stepOf
	if se.HasMode {
		op.def.Mode = se.Mode
	} else if se.Kind != "SEQ" {
		op.def.Mode = core.ModeConsecutive
	}
	op.def.ExpireAfter = se.ExpireAfter

	// Operator window.
	if w := se.Window; w != nil {
		if w.Rows {
			return nil, nil, fmt.Errorf("esl: ROWS windows are not supported on %s", se.Kind)
		}
		if w.HasPreceding && w.HasFollowing {
			return nil, nil, fmt.Errorf("esl: PRECEDING AND FOLLOWING is not supported on %s", se.Kind)
		}
		anchor := len(op.def.Steps) - 1
		if w.HasFollowing {
			anchor = 0
		}
		if w.Anchor != "" {
			i, ok := stepOf[strings.ToLower(w.Anchor)]
			if !ok {
				return nil, nil, fmt.Errorf("esl: window anchor %q is not a %s argument", w.Anchor, se.Kind)
			}
			anchor = i
		}
		span := w.Preceding
		if w.HasFollowing {
			span = w.Following
		}
		op.def.Window = &core.WindowAnchor{Span: span, Step: anchor, Following: w.HasFollowing}
	}

	// Classify the WHERE conjuncts.
	var conjuncts []Expr
	splitConjuncts(sel.Where, &conjuncts)
	resolveAlias := func(ref *ColRef) (string, error) {
		if ref.Qualifier != "" {
			key := strings.ToLower(ref.Qualifier)
			if _, ok := stepOf[key]; !ok {
				return "", fmt.Errorf("esl: %q does not name a %s argument", ref.Qualifier, se.Kind)
			}
			return key, nil
		}
		var found string
		for alias := range stepOf {
			if _, ok := aliasSchemaMap[alias].Col(ref.Name); ok {
				if found != "" {
					return "", fmt.Errorf("esl: unqualified column %q is ambiguous across %s arguments", ref.Name, se.Kind)
				}
				found = alias
			}
		}
		if found == "" {
			return "", fmt.Errorf("esl: unknown column %q", ref.Name)
		}
		return found, nil
	}

	var residual []stepConjunct
	var partitionEdges [][2]colKey

	var levelCmp *Binary
	for _, c := range conjuncts {
		// The operator conjunct itself.
		if c == Expr(se) {
			continue
		}
		// CLEVEL comparison: cmp(CLEVEL_SEQ(...), literal) either side.
		if b, ok := c.(*Binary); ok && se.Kind == "CLEVEL_SEQ" {
			if b.L == Expr(se) || b.R == Expr(se) {
				levelCmp = b
				continue
			}
		}
		if inner := findSeqExpr(c); inner != nil {
			return nil, nil, fmt.Errorf("esl: only one %s-family operator per query", se.Kind)
		}

		// Partition-key candidates: alias1.col = alias2.col.
		if b, ok := c.(*Binary); ok && b.Op == "=" {
			l, lok := b.L.(*ColRef)
			r, rok := b.R.(*ColRef)
			if lok && rok {
				la, lerr := resolveAlias(l)
				ra, rerr := resolveAlias(r)
				if lerr == nil && rerr == nil && la != ra {
					partitionEdges = append(partitionEdges, [2]colKey{
						{alias: la, col: strings.ToLower(l.Name)},
						{alias: ra, col: strings.ToLower(r.Name)},
					})
					continue
				}
			}
		}

		// General conjunct: find referenced aliases.
		cl := stepConjunct{expr: c, refs: map[string]bool{}}
		var resolveErr error
		walkExpr(c, func(n Expr) {
			switch x := n.(type) {
			case *ColRef:
				a, err := resolveAlias(x)
				if err != nil && resolveErr == nil {
					resolveErr = err
				}
				if err == nil {
					cl.refs[a] = true
				}
			case *PrevRef:
				cl.refs[strings.ToLower(x.Alias)] = true
				cl.hasPrev = true
			case *StarAgg:
				cl.refs[strings.ToLower(x.Alias)] = true
			}
		})
		if resolveErr != nil {
			return nil, nil, resolveErr
		}
		cl.evalAt = 0
		for a := range cl.refs {
			if i, ok := stepOf[a]; ok && i > cl.evalAt {
				cl.evalAt = i
			}
		}
		residual = append(residual, cl)
	}
	if se.Kind == "CLEVEL_SEQ" {
		if levelCmp == nil {
			return nil, nil, fmt.Errorf("esl: CLEVEL_SEQ must appear in a comparison (e.g. CLEVEL_SEQ(...) < n)")
		}
		lf, err := compileLevelFilter(levelCmp, se, e.funcs)
		if err != nil {
			return nil, nil, err
		}
		op.levelFilter = lf
	}

	// Partition keys: a column-equality class covering every step.
	keyCols := solvePartition(partitionEdges, op.aliases)
	if keyCols != nil {
		for i, alias := range op.aliases {
			col := keyCols[strings.ToLower(alias)]
			schema := aliasSchemaMap[strings.ToLower(alias)]
			pos, ok := schema.Col(col)
			if !ok {
				return nil, nil, fmt.Errorf("esl: partition column %q missing on %s", col, alias)
			}
			keyPos := pos
			op.def.Steps[i].Key = func(t *stream.Tuple) stream.Value { return t.Get(keyPos) }
		}
		// A fully-keyed SEQ partitions the stream into independent per-key
		// sub-instances: hash-routing input by the key column reproduces the
		// serial match set exactly, because window, mode and gap admission
		// are all decided at bind time from tuple timestamps. ExpireAfter
		// idling and the exception kinds depend on the global heartbeat
		// interleaving, so they stay serial.
		if se.Kind == "SEQ" && se.ExpireAfter == 0 {
			keys := map[string]string{}
			conflict := false
			for alias, col := range keyCols {
				src := strings.ToLower(aliasStream[alias])
				if prev, ok := keys[src]; ok && prev != col {
					conflict = true // same stream keyed by two different columns
				}
				keys[src] = col
			}
			if !conflict {
				q.shard = Shardability{Shardable: true, Keys: keys}
			}
		}
	} else {
		// No full cover: the equality conjuncts become residual predicates.
		for _, edge := range partitionEdges {
			l, r := edge[0], edge[1]
			cl := stepConjunct{
				expr: &Binary{Op: "=",
					L: &ColRef{Qualifier: l.alias, Name: l.col},
					R: &ColRef{Qualifier: r.alias, Name: r.col}},
				refs: map[string]bool{l.alias: true, r.alias: true},
			}
			for a := range cl.refs {
				if i := stepOf[a]; i > cl.evalAt {
					cl.evalAt = i
				}
			}
			residual = append(residual, cl)
		}
	}

	// Single-alias conjuncts without previous/star references become step
	// filters (cheap pushdown); a MaxGap shape becomes the star gap bound.
	// Along the way, collect each step's sargable `col = literal` shape for
	// the routing index: stepEq[i] is a constant-equality predicate the step
	// provably enforces before tuple i can bind (nil when none exists).
	stepEq := make([]*guardPred, len(op.def.Steps))
	captureStepEq := func(stepIdx int, expr Expr) {
		if stepEq[stepIdx] != nil {
			return
		}
		ref, val, ok := eqConstShape(expr)
		if !ok || val.Kind() == stream.KindNull {
			return
		}
		pos, ok := aliasSchemaMap[op.lowerAliases[stepIdx]].Col(ref.Name)
		if !ok {
			return
		}
		stepEq[stepIdx] = &guardPred{col: strings.ToLower(ref.Name), pos: pos, vals: []stream.Value{val}}
	}
	predsByStep := make([][]stepConjunct, len(op.def.Steps))
	stepFilters := make([][]compiledPred, len(op.def.Steps))
	stepFilterExprs := make([][]Expr, len(op.def.Steps))
	for _, cl := range residual {
		stepIdx := cl.evalAt
		step := &op.def.Steps[stepIdx]
		if len(cl.refs) == 1 && !cl.hasPrev && !exprHasStarAgg(cl.expr) && !step.Star {
			// A filter failure clears the step's mask bit, and a tuple whose
			// mask is empty is invisible to every matcher kind and mode — so
			// filter-derived guards are always skip-safe. The conjunct
			// compiles to a specialized closure (constant equality, range,
			// IS NULL) where its shape allows, interpreted otherwise.
			captureStepEq(stepIdx, cl.expr)
			cp := compileTupleFilter(cl.expr, aliasSchemaMap[op.lowerAliases[stepIdx]], op.lowerAliases[stepIdx], e.funcs)
			stepFilters[stepIdx] = append(stepFilters[stepIdx], cp)
			stepFilterExprs[stepIdx] = append(stepFilterExprs[stepIdx], cl.expr)
			continue
		}
		if gap, ok := maxGapShape(cl.expr, step, aliasSchemaMap); ok && step.Star {
			if step.MaxGap == 0 || gap < step.MaxGap {
				step.MaxGap = gap
			}
			continue
		}
		// Residual-predicate failure leaves the mask bit set: the matcher
		// sees the tuple but refuses the binding. That refusal is a no-op
		// only for plain SEQ outside CONSECUTIVE mode (a CONSECUTIVE run
		// breaks on a visible non-binding tuple, and the exception kinds
		// raise exceptions on one) — so only there may a residual equality
		// feed the routing index.
		if se.Kind == "SEQ" && op.def.Mode != core.ModeConsecutive &&
			len(cl.refs) == 1 && !cl.hasPrev && !exprHasStarAgg(cl.expr) {
			captureStepEq(stepIdx, cl.expr)
		}
		predsByStep[stepIdx] = append(predsByStep[stepIdx], cl)
	}

	// Fuse each step's compiled filter conjuncts into one closure and record
	// the tiers for EXPLAIN.
	op.filterTiers = make([][]string, len(op.def.Steps))
	for i := range op.def.Steps {
		op.def.Steps[i].Filter = fuseFilters(stepFilters[i])
		for _, cp := range stepFilters[i] {
			op.filterTiers[i] = append(op.filterTiers[i], cp.tier)
		}
	}

	// The residual predicate closure.
	hasPreds := false
	for _, ps := range predsByStep {
		if len(ps) > 0 {
			hasPreds = true
		}
	}
	if hasPreds {
		op.def.Pred = buildPredClosure(e.funcs, &op.def, op.stepIdx, op.lowerAliases, predsByStep, len(op.def.Steps))
	}

	// Build the matcher.
	var err error
	if se.Kind == "SEQ" {
		op.seq, err = core.NewMatcher(op.def)
	} else {
		op.exc, err = core.NewExceptionMatcher(op.def)
	}
	if err != nil {
		return nil, nil, err
	}

	// Projection: detect the per-item star form.
	schemas = append(schemas, aliasSchema{alias: "exception", schema: exceptionSchema})
	op.proj, err = e.compileProjection(sel, schemas[:len(schemas)-boolToInt(se.Kind == "SEQ")])
	if err != nil {
		return nil, nil, err
	}
	// Validate projection references at registration time.
	for _, item := range sel.Items {
		if item.Star {
			continue
		}
		var vErr error
		walkExpr(item.Expr, func(n Expr) {
			if vErr != nil {
				return
			}
			switch x := n.(type) {
			case *ColRef:
				if se.Kind != "SEQ" && strings.EqualFold(x.Qualifier, "exception") {
					if _, ok := exceptionSchema.Col(x.Name); !ok {
						vErr = fmt.Errorf("esl: unknown exception column %q", x.Name)
					}
					return
				}
				alias, err := resolveAlias(x)
				if err != nil {
					vErr = err
					return
				}
				if _, ok := aliasSchemaMap[alias].Col(x.Name); !ok {
					vErr = fmt.Errorf("esl: stream %s has no column %q", alias, x.Name)
				}
			case *PrevRef:
				key := strings.ToLower(x.Alias)
				schema, ok := aliasSchemaMap[key]
				if !ok {
					vErr = fmt.Errorf("esl: %q does not name a %s argument", x.Alias, se.Kind)
					return
				}
				if _, ok := schema.Col(x.Name); !ok {
					vErr = fmt.Errorf("esl: stream %s has no column %q", x.Alias, x.Name)
				}
			case *StarAgg:
				key := strings.ToLower(x.Alias)
				i, ok := stepOf[key]
				if !ok || !op.def.Steps[i].Star {
					vErr = fmt.Errorf("esl: %s(%s*) needs a star argument of %s", x.Fn, x.Alias, se.Kind)
					return
				}
				if x.Name != "" {
					if _, ok := aliasSchemaMap[key].Col(x.Name); !ok {
						vErr = fmt.Errorf("esl: stream %s has no column %q", x.Alias, x.Name)
					}
				}
			}
		})
		if vErr != nil {
			return nil, nil, vErr
		}
	}

	op.starItemStep = -1
	for _, item := range sel.Items {
		walkExpr(item.Expr, func(n Expr) {
			var alias string
			switch x := n.(type) {
			case *ColRef:
				alias = strings.ToLower(x.Qualifier)
			case *PrevRef:
				alias = strings.ToLower(x.Alias)
			default:
				return
			}
			if i, ok := stepOf[alias]; ok && op.def.Steps[i].Star {
				if op.starItemStep >= 0 && op.starItemStep != i {
					err = fmt.Errorf("esl: multi-return projection over more than one star sequence is not allowed (§3.1.2)")
				}
				op.starItemAlias = op.def.Steps[i].Alias
				op.starItemStep = i
			}
		})
	}
	if err != nil {
		return nil, nil, err
	}

	// Fast projection: when every select item is a plain column reference on
	// a non-star step, rows build by direct tuple indexing with no
	// expression-tree walk.
	if se.Kind == "SEQ" && op.starItemStep < 0 {
		op.fastProj = compileFastProjection(sel, func(ref *ColRef) (int, int, bool) {
			alias, rErr := resolveAlias(ref)
			if rErr != nil {
				return 0, 0, false
			}
			i, ok := stepOf[alias]
			if !ok || op.def.Steps[i].Star {
				return 0, 0, false
			}
			pos, ok := aliasSchemaMap[alias].Col(ref.Name)
			if !ok {
				return 0, 0, false
			}
			return i, pos, true
		})
	}

	// Classify the query for the plan-merging layer.
	if se.Kind == "SEQ" {
		op.merge = buildMergeSpec(op, keyCols, aliasStream, predsByStep, stepFilters, stepFilterExprs,
			func(ref *ColRef) (int, bool) {
				a, rErr := resolveAlias(ref)
				if rErr != nil {
					return 0, false
				}
				i, ok := stepOf[a]
				return i, ok
			},
			func(alias string) (int, bool) {
				i, ok := stepOf[strings.ToLower(alias)]
				return i, ok
			},
			e.funcs)
	}

	// Routing: each step's alias reads its FROM source stream.
	inputs := map[string][]string{}
	for _, alias := range op.aliases {
		src := aliasStream[strings.ToLower(alias)]
		inputs[src] = appendUnique(inputs[src], alias)
	}

	// Routing-index guards: a stream edge gets a guard only when EVERY step
	// it feeds carries a constant-equality — then a tuple matching none of
	// those constants can bind no step at all, and skipping delivery is a
	// provable no-op. One unguarded step keeps the whole edge conservative.
	for i := range op.def.Steps {
		src := strings.ToLower(aliasStream[op.lowerAliases[i]])
		covered := true
		for j := range op.def.Steps {
			if strings.ToLower(aliasStream[op.lowerAliases[j]]) == src && stepEq[j] == nil {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		if q.guards == nil {
			q.guards = map[string]*streamGuard{}
		}
		if q.guards[src] == nil {
			g := &streamGuard{strict: true}
			for j := range op.def.Steps {
				if strings.ToLower(aliasStream[op.lowerAliases[j]]) == src {
					p := stepEq[j]
					for _, v := range p.vals {
						g.add(p.col, p.pos, v)
					}
				}
			}
			q.guards[src] = g
		}
	}
	return op, inputs, nil
}

type colKey struct{ alias, col string }

// solvePartition finds an equality class covering all step aliases and
// returns alias -> column, or nil.
func solvePartition(edges [][2]colKey, aliases []string) map[string]string {
	if len(edges) == 0 {
		return nil
	}
	parent := map[colKey]colKey{}
	var find func(k colKey) colKey
	find = func(k colKey) colKey {
		if p, ok := parent[k]; ok && p != k {
			root := find(p)
			parent[k] = root
			return root
		}
		if _, ok := parent[k]; !ok {
			parent[k] = k
		}
		return parent[k]
	}
	union := func(a, b colKey) { parent[find(a)] = find(b) }
	for _, e := range edges {
		union(e[0], e[1])
	}
	// Group members by root; look for a class with one column per alias.
	classes := map[colKey][]colKey{}
	for k := range parent {
		root := find(k)
		classes[root] = append(classes[root], k)
	}
	for _, members := range classes {
		cover := map[string]string{}
		for _, m := range members {
			if _, dup := cover[m.alias]; !dup {
				cover[m.alias] = m.col
			}
		}
		full := true
		for _, a := range aliases {
			if _, ok := cover[strings.ToLower(a)]; !ok {
				full = false
				break
			}
		}
		if full {
			return cover
		}
	}
	return nil
}

// maxGapShape matches X.tc - X.previous.tc <= INTERVAL (or <) on a star
// step's time column, turning the previous-operator constraint into the
// matcher's MaxGap fast path.
func maxGapShape(e Expr, step *core.Step, schemas map[string]*stream.Schema) (time.Duration, bool) {
	b, ok := e.(*Binary)
	if !ok || (b.Op != "<=" && b.Op != "<") {
		return 0, false
	}
	diff, ok := b.L.(*Binary)
	if !ok || diff.Op != "-" {
		return 0, false
	}
	iv, ok := b.R.(*Interval)
	if !ok {
		return 0, false
	}
	cur, ok := diff.L.(*ColRef)
	if !ok || !strings.EqualFold(cur.Qualifier, step.Alias) {
		return 0, false
	}
	prev, ok := diff.R.(*PrevRef)
	if !ok || !strings.EqualFold(prev.Alias, step.Alias) || !strings.EqualFold(prev.Name, cur.Name) {
		return 0, false
	}
	schema := schemas[strings.ToLower(step.Alias)]
	tc := schema.TimeColumn()
	if tc < 0 {
		return 0, false
	}
	if pos, ok := schema.Col(cur.Name); !ok || pos != tc {
		return 0, false
	}
	d := iv.D
	if b.Op == "<" {
		d -= time.Nanosecond
	}
	return d, true
}

func exprHasStarAgg(e Expr) bool {
	found := false
	walkExpr(e, func(n Expr) {
		if _, ok := n.(*StarAgg); ok {
			found = true
		}
	})
	return found
}

// compileLevelFilter turns "CLEVEL_SEQ(...) < 3" into a level predicate.
func compileLevelFilter(cmp *Binary, se *SeqExpr, funcs *FuncRegistry) (func(int) bool, error) {
	other := cmp.R
	flip := false
	if cmp.R == Expr(se) {
		other = cmp.L
		flip = true
	}
	env := NewEnv(funcs)
	v, err := env.Eval(other)
	if err != nil {
		return nil, fmt.Errorf("esl: CLEVEL_SEQ comparison operand must be constant: %v", err)
	}
	bound, ok := v.AsInt()
	if !ok {
		return nil, fmt.Errorf("esl: CLEVEL_SEQ comparison operand must be an integer")
	}
	op := cmp.Op
	if flip { // const OP clevel  ->  clevel OP' const
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	return func(level int) bool {
		l := int64(level)
		switch op {
		case "<":
			return l < bound
		case "<=":
			return l <= bound
		case ">":
			return l > bound
		case ">=":
			return l >= bound
		case "=":
			return l == bound
		case "<>":
			return l != bound
		default:
			return false
		}
	}, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ---- runtime ---------------------------------------------------------------

func (op *eventOp) push(aliases []string, t *stream.Tuple) error {
	if op.seq != nil {
		matches, err := op.seq.Push(t, aliases...)
		if err != nil {
			return err
		}
		for _, m := range matches {
			if err := op.emitMatch(m); err != nil {
				return err
			}
		}
		return nil
	}
	_, exs, err := op.exc.Push(t, aliases...)
	if err != nil {
		return err
	}
	return op.emitExceptions(exs)
}

func (op *eventOp) advance(ts stream.Timestamp) error {
	if op.seq != nil {
		op.seq.Advance(ts)
		return nil
	}
	return op.emitExceptions(op.exc.Advance(ts))
}

// timeSensitive: exception matchers fire timers from heartbeats alone, and
// ExpireAfter evicts idle runs whose expiry the per-item clock must observe.
// A plain SEQ without idle expiry only emits on arrival.
func (op *eventOp) timeSensitive() bool {
	return op.exc != nil || op.def.ExpireAfter > 0
}

func (op *eventOp) resolveFor(aliases []string) *core.Resolved {
	for i := range op.resolved {
		re := &op.resolved[i]
		if len(re.aliases) == len(aliases) && (len(aliases) == 0 || &re.aliases[0] == &aliases[0]) {
			return re.res
		}
	}
	res := op.seq.Resolve(aliases...)
	op.resolved = append(op.resolved, resolvedEntry{aliases: aliases, res: res})
	return res
}

// pushBatch feeds a run of same-stream tuples to the matcher.
func (op *eventOp) pushBatch(aliases []string, b *stream.Batch) error {
	e := op.e
	if op.seq == nil {
		// Exception matchers are time-sensitive, so the engine keeps them on
		// the exact per-item path; this fallback only serves completeness.
		for _, t := range b.Tuples {
			if t.TS > e.now {
				e.now = t.TS
			}
			if err := op.push(aliases, t); err != nil {
				return err
			}
		}
		return nil
	}
	r := op.resolveFor(aliases)
	if op.q.target != "" {
		// Derived emission can feed back into this query's own inputs, so
		// keep the serial push/emit interleaving; only the per-push alias
		// resolution is amortized (the engine also defers its trailing
		// advance to the run boundary).
		for i, t := range b.Tuples {
			if t.TS > e.now {
				e.now = t.TS
			}
			if len(b.Prev) > 0 {
				op.seq.Advance(b.Prev[i])
			}
			matches, err := op.seq.PushResolved(r, t)
			if err != nil {
				return err
			}
			for _, m := range matches {
				if err := op.emitMatch(m); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Callback-only sink: the whole run feeds the NFA key-grouped, so each
	// partition's state is visited once per run instead of once per tuple.
	// The matcher returns matches in serial emission order; the clock is
	// advanced to each trigger before its rows are emitted.
	bms, err := op.seq.PushBatchAt(r, b.Tuples, b.Prev)
	if err != nil {
		return err
	}
	for _, bm := range bms {
		if t := b.Tuples[bm.Index]; t.TS > e.now {
			e.now = t.TS
		}
		if err := op.emitMatch(bm.Match); err != nil {
			return err
		}
	}
	return nil
}

// emitMatch projects one completed SEQ match — one row normally, one row
// per star tuple in the multi-return form.
func (op *eventOp) emitMatch(m *core.Match) error {
	// Speculative replicas carry the match's provenance hash on every row —
	// the arrival-order-independent identity reconciliation pairs records
	// by. Computed once per match, and only when the query asked for it, so
	// strict queries pay one branch.
	var prov uint64
	if op.q.wantProv {
		prov = m.Prov()
	}
	if op.fastProj != nil {
		r := op.proj.row(op.fastProj.build(m), m.End())
		r.mprov = prov
		return op.q.sink(r)
	}
	base := getEnv(op.e.funcs)
	defer putEnv(base)
	base.BindMatchIndexed(m, &op.def, op.stepIdx, op.lowerAliases)
	if op.starItemStep < 0 {
		vals, err := op.proj.build(base)
		if err != nil {
			return err
		}
		r := op.proj.row(vals, m.End())
		r.mprov = prov
		return op.q.sink(r)
	}
	group := m.Groups[op.starItemStep]
	for i, t := range group {
		env := getChildEnv(base)
		var prev *stream.Tuple
		if i > 0 {
			prev = group[i-1]
		}
		env.bindStarTupleLower(op.lowerAliases[op.starItemStep], t, prev)
		vals, err := op.proj.build(env)
		putEnv(env)
		if err != nil {
			return err
		}
		r := op.proj.row(vals, m.End())
		r.mprov = prov
		if err := op.q.sink(r); err != nil {
			return err
		}
	}
	return nil
}

// emitExceptions projects EXCEPTION_SEQ / CLEVEL_SEQ events. Unbound steps
// project as NULL; the pseudo-alias "exception" carries (level, reason, at).
func (op *eventOp) emitExceptions(exs []*core.Exception) error {
	for _, x := range exs {
		if op.levelFilter != nil && !op.levelFilter(x.Level) {
			continue
		}
		env := getEnv(op.e.funcs)
		partial := x.Partial
		if partial == nil {
			partial = &core.Match{Groups: make([][]*stream.Tuple, len(op.def.Steps))}
		}
		env.BindMatchIndexed(partial, &op.def, op.stepIdx, op.lowerAliases)
		if x.Trigger != nil && x.Reason == core.BreakBadStart {
			// A bad-start trigger is the (failed) first step's tuple; bind
			// it so projections of the first alias show the offender.
			env.bindTupleLower(op.lowerAliases[0], x.Trigger)
		}
		env.BindRow("exception", exceptionSchema, []stream.Value{
			stream.Int(int64(x.Level)),
			stream.Str(x.Reason.String()),
			stream.Time(x.TS),
		})
		vals, err := op.proj.build(env)
		putEnv(env)
		if err != nil {
			return err
		}
		if err := op.q.sink(op.proj.row(vals, x.TS)); err != nil {
			return err
		}
	}
	return nil
}
