package esl

// Plan-merging equivalence: every scenario is driven through an unmerged
// reference engine (WithoutPlanMerge, serial Push) and compared row-for-row
// against the merged engine — serially and through PushBatch at several
// batch sizes — plus an unmerged batched arm as a control. Merging must be
// unobservable: same rows, same order, per sink.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stream"
)

// runMergeEquiv drives the scenario through every arm and compares sinks.
func runMergeEquiv(t *testing.T, sc bqScenario) {
	t.Helper()
	want := routeArm(t, sc, []Option{WithoutPlanMerge()}, 0)
	arms := []struct {
		name  string
		opts  []Option
		batch int
	}{
		{"merged/serial", nil, 0},
		{"merged/batch=1", nil, 1},
		{"merged/batch=7", nil, 7},
		{"merged/batch=256", nil, 256},
		{"nomerge/batch=7", []Option{WithoutPlanMerge()}, 7},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			got := routeArm(t, sc, arm.opts, arm.batch)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("diverged from unmerged serial reference:\ngot:  %v\nwant: %v", got, want)
			}
		})
	}
}

// meFeed builds the merge feed: DOCK-heavy C1 traffic (so shared prefixes
// fire often), readers R0..R9 on the finals, five tags plus NULLs, and
// interleaved heartbeats.
func meFeed(rng *rand.Rand, n int) []bqEvt {
	var evts []bqEvt
	at := 0
	for i := 0; i < n; i++ {
		at++
		stn := []string{"C1", "C2"}[rng.Intn(2)]
		var rid stream.Value
		if stn == "C1" && rng.Intn(3) > 0 {
			rid = stream.Str("DOCK")
		} else {
			rid = stream.Str(fmt.Sprintf("R%d", rng.Intn(10)))
		}
		var tag stream.Value
		if rng.Intn(10) == 0 {
			tag = stream.Null
		} else {
			tag = stream.Str(fmt.Sprintf("t%d", rng.Intn(5)))
		}
		evts = append(evts, bqTup(stn, bqSec(at), rid, tag, stream.Time(bqSec(at))))
		if rng.Intn(16) == 0 {
			at++
			evts = append(evts, bqBeat(bqSec(at)))
		}
	}
	return evts
}

// mergeFamily registers the shared-prefix family plus identical duplicates
// under one pairing mode.
func mergeFamily(t *testing.T, e *Engine, mode string, rec func(tag, line string)) {
	t.Helper()
	for i := 0; i < 4; i++ {
		bqRegister(t, e, fmt.Sprintf(`
			SELECT C1.tagid, C2.tagtime FROM C1, C2
			WHERE SEQ(C1, C2)%s
			AND C1.readerid = 'DOCK' AND C2.readerid = 'R%d'
			AND C1.tagid = C2.tagid`, mode, i),
			fmt.Sprintf("fam-%d", i), rec)
	}
	// Identical twins (same full signature).
	for i := 0; i < 2; i++ {
		bqRegister(t, e, fmt.Sprintf(`
			SELECT C2.tagid FROM C1, C2
			WHERE SEQ(C1, C2) OVER [4 SECONDS PRECEDING C2]%s
			AND C1.readerid = 'DOCK'`, mode),
			fmt.Sprintf("twin-%d", i), rec)
	}
	// A loner with a different window: merges with nobody.
	bqRegister(t, e, fmt.Sprintf(`
		SELECT C2.tagid FROM C1, C2
		WHERE SEQ(C1, C2) OVER [2 SECONDS PRECEDING C2]%s
		AND C1.readerid = 'R1'`, mode),
		"loner", rec)
}

// TestMergeEquivSEQModes: the shared-prefix family, identical twins, and a
// loner under all four pairing modes, against a DOCK-heavy random feed.
func TestMergeEquivSEQModes(t *testing.T) {
	for _, mode := range []string{"", " MODE RECENT", " MODE CHRONICLE", " MODE CONSECUTIVE"} {
		t.Run("mode="+mode, func(t *testing.T) {
			runMergeEquiv(t, bqScenario{
				evts: meFeed(rand.New(rand.NewSource(31)), 400),
				setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
					bqExec(t, e, reDDL)
					mergeFamily(t, e, mode, rec)
				},
			})
		})
	}
}

// TestMergeEquivStarPrefix: star steps in the shared prefix exercise the
// run-store engine under a merged automaton (UNRESTRICTED is the only
// star-compatible prefix tier).
func TestMergeEquivStarPrefix(t *testing.T) {
	runMergeEquiv(t, bqScenario{
		evts: meFeed(rand.New(rand.NewSource(37)), 300),
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, reDDL)
			for i := 0; i < 3; i++ {
				bqRegister(t, e, fmt.Sprintf(`
					SELECT C2.tagid, count(C1*) FROM C1, C2
					WHERE SEQ(C1*, C2)
					OVER [5 SECONDS PRECEDING C2]
					AND C1.readerid = 'DOCK' AND C2.readerid = 'R%d'
					AND C1.tagid = C2.tagid`, i),
					fmt.Sprintf("star-%d", i), rec)
			}
		},
	})
}

// TestMergeEquivExceptionAndTransducers: non-SEQ operators flow around the
// merge layer untouched, mixed with a merged family in the same engine.
func TestMergeEquivExceptionAndTransducers(t *testing.T) {
	runMergeEquiv(t, bqScenario{
		evts: meFeed(rand.New(rand.NewSource(41)), 300),
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, reDDL)
			mergeFamily(t, e, "", rec)
			bqRegister(t, e, `
				SELECT C1.tagid FROM C1, C2
				WHERE EXCEPTION_SEQ(C1, C2) OVER [2 SECONDS FOLLOWING C1]
				AND C1.readerid = 'DOCK' AND C2.readerid = 'R0'
				AND C1.tagid = C2.tagid`, "exc", rec)
			for i := 0; i < 3; i++ {
				bqRegister(t, e, fmt.Sprintf(
					`SELECT readerid, tagid FROM C2 WHERE tagid = 't%d'`, i),
					fmt.Sprintf("fp-%d", i), rec)
			}
		},
	})
}

// TestMergeEquivExpireAfter: idle expiry keeps queries out of the prefix
// tier (a shared run's lifetime would couple members); identical twins
// still share, and everything must match the unmerged reference.
func TestMergeEquivExpireAfter(t *testing.T) {
	runMergeEquiv(t, bqScenario{
		sensitive: true,
		evts:      meFeed(rand.New(rand.NewSource(43)), 300),
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, reDDL)
			for i := 0; i < 2; i++ {
				bqRegister(t, e, `
					SELECT C1.tagid FROM C1, C2
					WHERE SEQ(C1, C2) MODE CHRONICLE EXPIRE AFTER 3 SECONDS
					AND C1.readerid = 'DOCK' AND C1.tagid = C2.tagid`,
					fmt.Sprintf("exp-%d", i), rec)
			}
		},
	})
}

// TestMergeEquivMidStreamRegistration: queries joining a live group halfway
// through the feed must behave exactly like fresh independent queries.
func TestMergeEquivMidStreamRegistration(t *testing.T) {
	feed := meFeed(rand.New(rand.NewSource(47)), 400)
	half := len(feed) / 2
	run := func(opts ...Option) map[string][]string {
		e := New(opts...)
		got, rec := bqRecorder()
		bqExec(t, e, reDDL)
		for i := 0; i < 2; i++ {
			bqRegister(t, e, fmt.Sprintf(`
				SELECT C1.tagid FROM C1, C2
				WHERE SEQ(C1, C2)
				AND C1.readerid = 'DOCK' AND C2.readerid = 'R%d'
				AND C1.tagid = C2.tagid`, i),
				fmt.Sprintf("early-%d", i), rec)
		}
		feedRange := func(evts []bqEvt) {
			for _, ev := range evts {
				var err error
				if ev.hb {
					err = e.Heartbeat(ev.ts)
				} else {
					err = e.Push(ev.name, ev.ts, ev.vals...)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		feedRange(feed[:half])
		for i := 2; i < 4; i++ {
			bqRegister(t, e, fmt.Sprintf(`
				SELECT C1.tagid FROM C1, C2
				WHERE SEQ(C1, C2)
				AND C1.readerid = 'DOCK' AND C2.readerid = 'R%d'
				AND C1.tagid = C2.tagid`, i),
				fmt.Sprintf("late-%d", i), rec)
		}
		feedRange(feed[half:])
		return got
	}
	got, want := run(), run(WithoutPlanMerge())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mid-stream joiners diverged:\nmerged:   %v\nunmerged: %v", got, want)
	}
}

// TestMergeEquivCheckpointRestore: checkpoint the merged engine mid-feed,
// restore into a fresh engine, finish the feed on both, and certify the
// restored run re-emits exactly the original tail — against the unmerged
// reference as ground truth.
func TestMergeEquivCheckpointRestore(t *testing.T) {
	for _, seed := range []int64{53, 59} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			feed := meFeed(rand.New(rand.NewSource(seed)), 300)
			half := len(feed) / 2
			setup := func(e *Engine, rec func(tag, line string)) {
				bqExec(t, e, reDDL)
				mergeFamily(t, e, "", rec)
			}
			feedRange := func(e *Engine, evts []bqEvt) {
				for _, ev := range evts {
					var err error
					if ev.hb {
						err = e.Heartbeat(ev.ts)
					} else {
						err = e.Push(ev.name, ev.ts, ev.vals...)
					}
					if err != nil {
						t.Fatal(err)
					}
				}
			}

			// Unmerged reference over the full feed.
			ref := New(WithoutPlanMerge())
			want, wantRec := bqRecorder()
			setup(ref, wantRec)
			feedRange(ref, feed)

			// Merged arm: checkpoint at the half-way cut.
			e1 := New()
			got1, rec1 := bqRecorder()
			setup(e1, rec1)
			feedRange(e1, feed[:half])
			var buf bytes.Buffer
			if err := e1.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			firstHalf := map[string]int{}
			for tag, lines := range got1 {
				firstHalf[tag] = len(lines)
			}
			feedRange(e1, feed[half:])
			if !reflect.DeepEqual(got1, want) {
				t.Fatalf("merged full run diverged:\ngot:  %v\nwant: %v", got1, want)
			}

			// Restored arm re-emits exactly the tail.
			e2 := New()
			got2, rec2 := bqRecorder()
			setup(e2, rec2)
			if err := e2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			feedRange(e2, feed[half:])
			for tag, lines := range want {
				tail := lines[firstHalf[tag]:]
				if len(tail) == 0 && len(got2[tag]) == 0 {
					continue
				}
				if !reflect.DeepEqual(got2[tag], tail) {
					t.Fatalf("restored tail diverged for %s:\ngot:  %v\nwant: %v", tag, got2[tag], tail)
				}
			}
			for tag := range got2 {
				if _, ok := want[tag]; !ok {
					t.Fatalf("restored run emitted unexpected sink %s: %v", tag, got2[tag])
				}
			}
		})
	}
}
