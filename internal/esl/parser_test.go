package esl

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// The paper's queries, verbatim (modulo ≤ spelled <=). Every one of these
// must parse.
var paperQueries = map[string]string{
	"schema_readings":      `STREAM readings(reader_id, tag_id, read_time);`,
	"schema_tag_locations": `STREAM tag_locations(readerid, tid, tagtime, loc);`,
	"schema_movement":      `TABLE object_movement(tagid, location, start_time);`,

	"example1_dedup": `
		INSERT INTO cleaned_readings
		SELECT * FROM readings AS r1
		WHERE NOT EXISTS
		  (SELECT * FROM TABLE( readings OVER
		      (RANGE 1 seconds PRECEDING CURRENT)) AS r2
		   WHERE r2.reader_id = r1.reader_id
		     AND r2.tag_id = r1.tag_id);`,

	"example2_location": `
		INSERT INTO object_movement
		SELECT tid, loc, tagtime
		FROM tag_locations WHERE NOT EXISTS
		  (SELECT tagid FROM object_movement
		   WHERE tagid = tid AND location = loc);`,

	"example3_epc": `
		SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
		AND extract_serial(tid) > 5000
		AND extract_serial(tid) < 9999;`,

	"example6_seq": `
		SELECT C1.tagid, C1.tagtime,
		       C2.tagtime, C3.tagtime, C4.tagtime
		FROM C1, C2, C3, C4
		WHERE SEQ(C1, C2, C3, C4)
		AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
		AND C1.tagid=C4.tagid;`,

	"example6_windowed": `
		SELECT C4.tagid, C1.tagtime
		FROM C1, C2, C3, C4
		WHERE SEQ(C1, C2, C3, C4)
		  OVER [30 MINUTES PRECEDING C4]
		AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
		AND C1.tagid=C4.tagid;`,

	"seq_mode_consecutive": `
		SELECT C1.tagid FROM C1, C2, C3, C4
		WHERE SEQ(C1, C2, C3, C4)
		OVER [30 MINUTES PRECEDING C4]
		MODE CONSECUTIVE;`,

	"example7_containment": `
		SELECT FIRST(R1*).tagtime, COUNT(R1*),
		       R2.tagid, R2.tagtime
		FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
		AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS;`,

	"example7_per_item": `
		SELECT R1.tagid, R1.tagtime,
		       R2.tagid, R2.tagtime
		FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
		AND R1.tagtime - R1.previous.tagtime < 1 SECONDS;`,

	"example5_exception": `
		SELECT A1.tagid, A2.tagid, A3.tagid
		FROM A1, A2, A3
		WHERE EXCEPTION_SEQ(A1, A2, A3)
		OVER [1 HOURS FOLLOWING A1];`,

	"example5_clevel": `
		SELECT A1.tagid, A2.tagid, A3.tagid
		FROM A1, A2, A3
		WHERE (CLEVEL_SEQ(A1, A2, A3)
		OVER [1 HOURS FOLLOWING A1]) < 3;`,

	"exception_mid_anchor": `
		SELECT A1.tagid FROM A1, A2, A3
		WHERE EXCEPTION_SEQ(A1, A2, A3)
		OVER [1 HOURS FOLLOWING A2];`,

	"example8_theft": `
		SELECT person.tagid
		FROM tag_readings AS person
		WHERE person.tagtype = 'person' AND NOT EXISTS
		  (SELECT * FROM tag_readings AS item
		   OVER [1 MINUTES
		     PRECEDING AND FOLLOWING person]
		   WHERE item.tagtype = 'item');`,
}

func TestPaperQueriesParse(t *testing.T) {
	for name, q := range paperQueries {
		if _, err := Parse(q); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseCreateStream(t *testing.T) {
	s, err := ParseOne(`CREATE STREAM readings(reader_id, tag_id, read_time)`)
	if err != nil {
		t.Fatal(err)
	}
	cs := s.(*CreateStream)
	if cs.Name != "readings" || len(cs.Cols) != 3 || cs.Cols[1].Name != "tag_id" {
		t.Fatalf("parsed: %+v", cs)
	}
	// Typed columns.
	s, err = ParseOne(`CREATE TABLE t(a INT, b VARCHAR, c TIMESTAMP)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.(*CreateTable)
	if ct.Cols[0].Type != stream.TInt || ct.Cols[1].Type != stream.TString || ct.Cols[2].Type != stream.TTime {
		t.Fatalf("types: %+v", ct.Cols)
	}
}

func TestParseSeqExpr(t *testing.T) {
	s, err := ParseOne(paperQueries["example7_containment"])
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*Select)
	// WHERE is SEQ(...) AND cond AND cond.
	b := sel.Where.(*Binary)
	if b.Op != "AND" {
		t.Fatal("top-level AND expected")
	}
	// Left-assoc: ((SEQ AND c1) AND c2)
	inner := b.L.(*Binary)
	se := inner.L.(*SeqExpr)
	if se.Kind != "SEQ" || len(se.Args) != 2 || !se.Args[0].Star || se.Args[1].Star {
		t.Fatalf("seq args: %+v", se.Args)
	}
	if !se.HasMode || se.Mode != core.ModeChronicle {
		t.Fatalf("mode: %v %v", se.HasMode, se.Mode)
	}
	// The previous-operator constraint.
	prevCond := b.R.(*Binary)
	lhs := prevCond.L.(*Binary)
	if _, ok := lhs.R.(*PrevRef); !ok {
		t.Fatalf("previous ref not parsed: %T", lhs.R)
	}
	if iv, ok := prevCond.R.(*Interval); !ok || iv.D != time.Second {
		t.Fatalf("interval: %+v", prevCond.R)
	}
}

func TestParseSeqWindow(t *testing.T) {
	s, err := ParseOne(paperQueries["example6_windowed"])
	if err != nil {
		t.Fatal(err)
	}
	se := findSeq(s.(*Select).Where)
	if se == nil || se.Window == nil {
		t.Fatal("window missing")
	}
	w := se.Window
	if !w.HasPreceding || w.Preceding != 30*time.Minute || w.Anchor != "C4" {
		t.Fatalf("window: %+v", w)
	}
	s, err = ParseOne(paperQueries["example5_exception"])
	if err != nil {
		t.Fatal(err)
	}
	se = findSeq(s.(*Select).Where)
	if se.Kind != "EXCEPTION_SEQ" || !se.Window.HasFollowing ||
		se.Window.Following != time.Hour || se.Window.Anchor != "A1" {
		t.Fatalf("exception window: %+v", se.Window)
	}
}

func findSeq(e Expr) *SeqExpr {
	switch x := e.(type) {
	case *SeqExpr:
		return x
	case *Binary:
		if s := findSeq(x.L); s != nil {
			return s
		}
		return findSeq(x.R)
	case *Unary:
		return findSeq(x.X)
	default:
		return nil
	}
}

func TestParseClevelComparison(t *testing.T) {
	s, err := ParseOne(paperQueries["example5_clevel"])
	if err != nil {
		t.Fatal(err)
	}
	cmp := s.(*Select).Where.(*Binary)
	if cmp.Op != "<" {
		t.Fatalf("op = %s", cmp.Op)
	}
	if se, ok := cmp.L.(*SeqExpr); !ok || se.Kind != "CLEVEL_SEQ" {
		t.Fatalf("lhs: %T", cmp.L)
	}
	if lit, ok := cmp.R.(*Literal); !ok || !lit.Val.Equal(stream.Int(3)) {
		t.Fatalf("rhs: %+v", cmp.R)
	}
}

func TestParseSubqueryWindows(t *testing.T) {
	// Example 1: TABLE(s OVER (RANGE ...)) AS alias.
	s, err := ParseOne(paperQueries["example1_dedup"])
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*InsertSelect)
	if ins.Target != "cleaned_readings" {
		t.Fatalf("target = %s", ins.Target)
	}
	ex := ins.Sel.Where.(*Exists)
	if !ex.Negate {
		t.Fatal("NOT EXISTS expected")
	}
	f := ex.Sub.From[0]
	if f.Source != "readings" || f.Alias != "r2" || f.Window == nil ||
		f.Window.Preceding != time.Second || f.Window.HasFollowing {
		t.Fatalf("from: %+v %+v", f, f.Window)
	}
	// Example 8: bracket window with PRECEDING AND FOLLOWING person.
	s, err = ParseOne(paperQueries["example8_theft"])
	if err != nil {
		t.Fatal(err)
	}
	cond := s.(*Select).Where.(*Binary)
	ex = cond.R.(*Exists)
	w := ex.Sub.From[0].Window
	if w == nil || !w.HasPreceding || !w.HasFollowing ||
		w.Preceding != time.Minute || w.Following != time.Minute || w.Anchor != "person" {
		t.Fatalf("window: %+v", w)
	}
}

func TestParseStarAggForms(t *testing.T) {
	s, err := ParseOne(`SELECT FIRST(R1*).tagtime, LAST(R1*).tagid, COUNT(R1*), COUNT(*), COUNT(tid) FROM R1, R2 WHERE SEQ(R1*, R2)`)
	if err != nil {
		t.Fatal(err)
	}
	items := s.(*Select).Items
	if sa := items[0].Expr.(*StarAgg); sa.Fn != "FIRST" || sa.Alias != "R1" || sa.Name != "tagtime" {
		t.Fatalf("FIRST: %+v", sa)
	}
	if sa := items[1].Expr.(*StarAgg); sa.Fn != "LAST" || sa.Name != "tagid" {
		t.Fatalf("LAST: %+v", sa)
	}
	if sa := items[2].Expr.(*StarAgg); sa.Fn != "COUNT" || sa.Alias != "R1" || sa.Name != "" {
		t.Fatalf("COUNT(R1*): %+v", sa)
	}
	if c := items[3].Expr.(*Call); !c.StarArg {
		t.Fatalf("COUNT(*): %+v", c)
	}
	if c := items[4].Expr.(*Call); c.StarArg || len(c.Args) != 1 {
		t.Fatalf("COUNT(tid): %+v", c)
	}
}

func TestParseUDA(t *testing.T) {
	src := `
	CREATE AGGREGATE myavg(nextval FLOAT) : FLOAT {
		TABLE state(tsum FLOAT, cnt INT);
		INITIALIZE : { INSERT INTO state VALUES (nextval, 1); }
		ITERATE : { UPDATE state SET tsum = tsum + nextval, cnt = cnt + 1; }
		TERMINATE : { INSERT INTO RETURN SELECT tsum / cnt FROM state; }
	};`
	s, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	agg := s.(*CreateAggregate)
	if agg.Name != "myavg" || len(agg.Params) != 1 || agg.ReturnType != stream.TFloat {
		t.Fatalf("header: %+v", agg)
	}
	if len(agg.State) != 1 || agg.State[0].Name != "state" {
		t.Fatalf("state: %+v", agg.State)
	}
	if len(agg.Init) != 1 || len(agg.Iter) != 1 || len(agg.Term) != 1 {
		t.Fatalf("bodies: %d %d %d", len(agg.Init), len(agg.Iter), len(agg.Term))
	}
	if _, ok := agg.Init[0].(*InsertValues); !ok {
		t.Fatalf("init: %T", agg.Init[0])
	}
	if _, ok := agg.Iter[0].(*UpdateStmt); !ok {
		t.Fatalf("iterate: %T", agg.Iter[0])
	}
	term := agg.Term[0].(*InsertSelect)
	if term.Target != "RETURN" {
		t.Fatalf("terminate target: %s", term.Target)
	}
}

func TestParseMiscStatements(t *testing.T) {
	cases := []string{
		`CREATE INDEX ON object_movement(tagid)`,
		`INSERT INTO t VALUES (1, 'x', 2.5), (2, 'y', 3.5)`,
		`UPDATE t SET a = a + 1 WHERE b = 'x'`,
		`DELETE FROM t WHERE a > 5`,
		`SELECT a, b AS bee FROM t WHERE a BETWEEN 1 AND 3 GROUP BY a HAVING count(*) > 1 LIMIT 10`,
		`SELECT DISTINCT a FROM t`,
		`SELECT * FROM s OVER (ROWS 10 PRECEDING)`,
		`SELECT a FROM t WHERE a IS NOT NULL AND b IS NULL`,
		`SELECT a FROM t WHERE a NOT LIKE 'x%' AND a NOT BETWEEN 1 AND 2`,
		`SELECT a FROM t WHERE NOT (a = 1 OR a = 2)`,
		`SELECT tagid FROM s WHERE SEQ(A, B) EXPIRE AFTER 10 SECONDS`,
		`SELECT -a, a * (b + 2) % 3, a || 'x' FROM t`,
	}
	for _, src := range cases {
		if _, err := ParseOne(src); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`SELECT`,
		`SELECT a`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`CREATE STREAM s(a`,
		`CREATE STREAM s(a BLOB)`,
		`CREATE FOO x`,
		`INSERT INTO`,
		`SELECT a FROM t WHERE a <=`,
		`SELECT a FROM s OVER [5 PRECEDING x]`,      // missing unit
		`SELECT a FROM s OVER [5 SECONDS SIDEWAYS]`, // bad direction
		`SELECT a FROM t WHERE SEQ()`,
		`SELECT a FROM t WHERE SEQ(A) MODE FANCY`,
		`SELECT a FROM t WHERE a BETWEEN 1`,
		`SELECT 'unterminated FROM t`,
		`SELECT a FROM t; garbage`,
		`SELECT a FROM t LIMIT x`,
		`UPDATE t SET`,
		`SELECT a FROM t WHERE NOT`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q should fail to parse", src)
		}
	}
}

// Round-trip: parse → print → parse → print is a fixpoint.
func TestParsePrintRoundTrip(t *testing.T) {
	for name, q := range paperQueries {
		if strings.HasPrefix(name, "schema_") {
			continue
		}
		stmts, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sel *Select
		switch s := stmts[0].(type) {
		case *Select:
			sel = s
		case *InsertSelect:
			sel = s.Sel
		}
		printed := SelectString(sel)
		stmts2, err := Parse(printed)
		if err != nil {
			t.Fatalf("%s: reparse of %q: %v", name, printed, err)
		}
		var sel2 *Select
		switch s := stmts2[0].(type) {
		case *Select:
			sel2 = s
		}
		if sel2 == nil {
			t.Fatalf("%s: reparse gave %T", name, stmts2[0])
		}
		if again := SelectString(sel2); again != printed {
			t.Errorf("%s: print not a fixpoint:\n  %s\n  %s", name, printed, again)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := Lex("SELECT a1_x, 'it''s', 2.5 -- comment\n FROM t <= >= <> !=")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "SELECT"}, {TokIdent, "a1_x"}, {TokSymbol, ","},
		{TokString, "it's"}, {TokSymbol, ","}, {TokNumber, "2.5"},
		{TokKeyword, "FROM"}, {TokIdent, "t"},
		{TokSymbol, "<="}, {TokSymbol, ">="}, {TokSymbol, "<>"}, {TokSymbol, "!="},
		{TokEOF, ""},
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens", len(toks))
	}
	for i, w := range kinds {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("a ~ b"); err == nil {
		t.Error("unknown char should fail")
	}
}

func TestLexerNumberDotHandling(t *testing.T) {
	// "20.5" is a float; "r1.tag" is ident-dot-ident; "1.2.3" lexes as
	// number "1.2" then ".3" pieces (EPC codes must be quoted strings).
	toks, _ := Lex("20.5 r1.tag")
	if toks[0].Text != "20.5" || toks[0].Kind != TokNumber {
		t.Errorf("float: %+v", toks[0])
	}
	if toks[1].Text != "r1" || !toks[2].Is(".") || toks[3].Text != "tag" {
		t.Errorf("qualified ref: %+v %+v %+v", toks[1], toks[2], toks[3])
	}
}
