package esl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stream"
)

// This file implements the shared multi-query routing index. At query
// compile time the planner extracts, per input stream, the sargable
// constant-equality predicates a query enforces before it can react to a
// tuple (step filters like C1.readerid = 'R7', or a leading WHERE conjunct
// on a transducer's outer stream). Those become a streamGuard attached to
// the (query, stream) reader edge; per stream the engine folds all guards
// into a routeTable so push/pushBatch offers a tuple only to the queries
// that can possibly react. Queries without an extractable guard stay on a
// conservative fallback list and see every tuple, exactly as before.
//
// Guards are advisory: the predicates they mirror remain in the compiled
// filters, so a delivered tuple is re-checked by the query itself. The only
// obligation is that a *skipped* tuple would have been a no-op — no output,
// no state change, no error — which the extraction rules in seqplan.go and
// plan.go establish per operator.

// guardPred is one column's admission test: the tuple's value at pos must
// equal one of vals for the guard to admit via this predicate.
type guardPred struct {
	col  string // lower-cased column name, for EXPLAIN
	pos  int    // column position in the stream schema
	vals []stream.Value
}

// streamGuard is the compile-time admission test for one (query, stream)
// edge: the query can only react to a tuple when some predicate admits it.
//
// strict guards come from SEQ-family step filters and residual predicates,
// whose evaluation swallows NULL (unknown) and cross-kind comparison errors
// as "does not bind" — so NULL and incomparable tuple values are skipped.
// Non-strict guards come from transducer WHERE conjuncts, where NULL yields
// unknown (which does not short-circuit AND) and a cross-kind comparison is
// a runtime error the serial path surfaces — both must be delivered.
type streamGuard struct {
	preds  []guardPred
	strict bool
}

// add merges one (col, val) equality into the guard, unioning values on an
// already-guarded column.
func (g *streamGuard) add(col string, pos int, val stream.Value) {
	for i := range g.preds {
		if g.preds[i].pos == pos {
			for _, v := range g.preds[i].vals {
				if v.Equal(val) {
					return
				}
			}
			g.preds[i].vals = append(g.preds[i].vals, val)
			return
		}
	}
	g.preds = append(g.preds, guardPred{col: col, pos: pos, vals: []stream.Value{val}})
}

// admits reports whether the query behind this guard could react to t.
func (g *streamGuard) admits(t *stream.Tuple) bool {
	for i := range g.preds {
		p := &g.preds[i]
		tv := t.Get(p.pos)
		if !g.strict && tv.Kind() == stream.KindNull {
			return true // evaluates to unknown, not false: deliver
		}
		for _, v := range p.vals {
			c, ok := tv.Compare(v)
			if ok && c == 0 {
				return true
			}
			if !ok && !g.strict {
				return true // cross-kind '=' errors at eval time: deliver
			}
		}
	}
	return false
}

// describe renders the guard for EXPLAIN and `eslev run -stats`.
func (g *streamGuard) describe() string {
	parts := make([]string, 0, len(g.preds))
	for i := range g.preds {
		p := &g.preds[i]
		vals := make([]string, len(p.vals))
		for j, v := range p.vals {
			vals[j] = v.String()
		}
		parts = append(parts, fmt.Sprintf("%s IN (%s)", p.col, strings.Join(vals, ", ")))
	}
	return strings.Join(parts, " OR ")
}

// routeTable is one stream's dispatch index over its readers. Reader
// ordinals (positions in streamInfo.readers) are partitioned into:
//
//   - fallback: readers with no guard — always delivered;
//   - hash-indexed: strict single-column guards, probed by value hash so a
//     tuple finds the reacting queries in O(1) regardless of fan-out;
//   - checked: the remaining guarded readers (multi-column guards and
//     non-strict transducer guards), verified per tuple with admits.
type routeTable struct {
	fallback []int // ascending
	checked  []int // ascending
	cols     []routeCol
	nGuarded int
}

type routeCol struct {
	pos     int
	entries map[uint64][]routeEntry
}

type routeEntry struct {
	val      stream.Value
	ordinals []int
}

// buildRouteTable folds the readers' guards into a dispatch table. It is
// rebuilt on each query registration (registration is rare; dispatch is the
// hot path).
func buildRouteTable(readers []reader) *routeTable {
	rt := &routeTable{}
	byPos := map[int]int{} // column position -> index into rt.cols
	for i := range readers {
		g := readers[i].guard
		if g == nil {
			rt.fallback = append(rt.fallback, i)
			continue
		}
		rt.nGuarded++
		if !g.strict || len(g.preds) != 1 {
			rt.checked = append(rt.checked, i)
			continue
		}
		p := &g.preds[0]
		ci, ok := byPos[p.pos]
		if !ok {
			ci = len(rt.cols)
			byPos[p.pos] = ci
			rt.cols = append(rt.cols, routeCol{pos: p.pos, entries: map[uint64][]routeEntry{}})
		}
		rc := &rt.cols[ci]
		for _, v := range p.vals {
			h := v.Hash()
			chain := rc.entries[h]
			found := false
			for ei := range chain {
				if chain[ei].val.Equal(v) {
					chain[ei].ordinals = append(chain[ei].ordinals, i)
					found = true
					break
				}
			}
			if !found {
				chain = append(chain, routeEntry{val: v, ordinals: []int{i}})
			}
			rc.entries[h] = chain
		}
	}
	return rt
}

// dispatchGuarded appends the ordinals of the *guarded* readers that must
// see t (hash-indexed hits plus admitting checked guards) to buf. Fallback
// readers are the caller's responsibility. Ordinals are appended unsorted
// and without duplicates (each guarded reader is indexed exactly once per
// distinct value, and a tuple equals at most one distinct value per column).
func (rt *routeTable) dispatchGuarded(readers []reader, t *stream.Tuple, buf []int) []int {
	for ci := range rt.cols {
		rc := &rt.cols[ci]
		tv := t.Get(rc.pos)
		chain := rc.entries[tv.Hash()]
		for ei := range chain {
			if chain[ei].val.Equal(tv) {
				buf = append(buf, chain[ei].ordinals...)
			}
		}
	}
	for _, i := range rt.checked {
		if readers[i].guard.admits(t) {
			buf = append(buf, i)
		}
	}
	return buf
}

// dispatch appends every reader ordinal that must see t — fallback plus
// admitted guarded readers — in ascending (registration) order, preserving
// the serial delivery order.
func (rt *routeTable) dispatch(readers []reader, t *stream.Tuple, buf []int) []int {
	buf = append(buf, rt.fallback...)
	n := len(buf)
	buf = rt.dispatchGuarded(readers, t, buf)
	if len(buf) > n {
		sort.Ints(buf)
	}
	return buf
}

// eqConstShape recognizes a `column = literal` conjunct (either operand
// order) — the sargable shape the routing index can dispatch on.
func eqConstShape(e Expr) (*ColRef, stream.Value, bool) {
	b, ok := e.(*Binary)
	if !ok || b.Op != "=" {
		return nil, stream.Null, false
	}
	if c, ok := b.L.(*ColRef); ok {
		if l, ok := b.R.(*Literal); ok {
			return c, l.Val, true
		}
	}
	if c, ok := b.R.(*ColRef); ok {
		if l, ok := b.L.(*Literal); ok {
			return c, l.Val, true
		}
	}
	return nil, stream.Null, false
}

// ConstGuard is the shape of a routing guard that makes a query *homable*
// out of process: on some stream edge, the query reacts only to tuples
// whose column Col (at schema position Pos) equals the single constant Val.
type ConstGuard struct {
	Col string
	Pos int
	Val stream.Value
}

// RouteGuard reports query q's constant-equality admission guard on the
// named stream, when it has exactly the homable shape: every reader edge q
// holds on the stream carries a strict guard with one column and one value,
// and all edges agree on both. Cluster placement uses this to register the
// query only on the node that owns hash(Val) and route the stream's tuples
// by the same column — any tuple the other nodes would receive is provably
// a no-op for q (the guard contract from this file's header).
//
// The second return is false when q does not read the stream, the edge is
// unguarded or non-strict, or the guard spans multiple columns or values
// (a query reading the stream under several aliases contributes all of them
// to one guard, so disagreeing aliases surface as multiple values here).
//
// The query's own guard map is consulted rather than the stream's reader
// list: merged SEQ plans register a hidden group query as the stream
// reader, whose guard is the union over members — per-member admission
// lives only on the Query.
func (e *Engine) RouteGuard(q *Query, streamName string) (ConstGuard, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g := q.guards[strings.ToLower(streamName)]
	if g == nil || !g.strict || len(g.preds) != 1 || len(g.preds[0].vals) != 1 {
		return ConstGuard{}, false
	}
	p := &g.preds[0]
	return ConstGuard{Col: p.col, Pos: p.pos, Val: p.vals[0]}, true
}
