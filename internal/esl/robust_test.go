package esl

// Tests for the fault-tolerance layer: slack reordering at the ingest
// boundary, lateness policies, dead-letter routing, per-query panic
// isolation, and the EngineStats counters. The strict default path is
// covered by robustness_test.go (TestOutOfOrderPushRejected et al.).

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
)

// TestWithSlackReordersWithinBound: disordered pushes within the slack come
// out in timestamp order; the engine clock trails by at most the slack until
// Drain.
func TestWithSlackReordersWithinBound(t *testing.T) {
	e := New(WithSlack(2 * time.Second))
	mustExec(t, e, `CREATE STREAM s(v);`)
	var got []int64
	if err := e.Subscribe("s", func(tp *stream.Tuple) {
		n, _ := tp.Get(0).AsInt()
		got = append(got, n)
	}); err != nil {
		t.Fatal(err)
	}
	// Arrival order 3s, 1s, 2s, 5s, 4s — all displacements < 2s of slack.
	for _, sec := range []int{3, 1, 2, 5, 4} {
		if err := e.Push("s", ts(time.Duration(sec)*time.Second), stream.Int(int64(sec))); err != nil {
			t.Fatalf("push %ds: %v", sec, err)
		}
	}
	st := e.EngineStats()
	if st.PendingReorder == 0 {
		t.Fatal("expected tuples held back by slack")
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("released order %v, want %v", got, want)
	}
	st = e.EngineStats()
	if st.Reordered == 0 || st.PendingReorder != 0 || st.Emitted != 5 || st.Ingested != 5 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestLatenessPolicies drives a late tuple through each policy.
func TestLatenessPolicies(t *testing.T) {
	push := func(e *Engine, sec int) error {
		return e.Push("s", ts(time.Duration(sec)*time.Second), stream.Int(int64(sec)))
	}
	setup := func(opts ...Option) *Engine {
		e := New(opts...)
		mustExec(t, e, `CREATE STREAM s(v);`)
		// Advance the watermark to 8s: high water 10s minus 2s slack.
		for _, sec := range []int{1, 10} {
			if err := push(e, sec); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}

	t.Run("ERROR", func(t *testing.T) {
		e := setup(WithSlack(2 * time.Second)) // default policy
		err := push(e, 3)
		if !errors.Is(err, stream.ErrLate) {
			t.Fatalf("want ErrLate, got %v", err)
		}
		if st := e.EngineStats(); st.DeadLettered != 1 {
			t.Fatalf("rejected tuple must be accounted: %+v", st)
		}
		// The engine stays usable after the rejection.
		if err := push(e, 11); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("DROP", func(t *testing.T) {
		e := setup(WithSlack(2*time.Second), WithLateness(stream.LateDrop))
		if err := push(e, 3); err != nil {
			t.Fatalf("DROP must not error: %v", err)
		}
		if st := e.EngineStats(); st.DroppedLate != 1 || st.DeadLettered != 0 {
			t.Fatalf("stats: %+v", st)
		}
	})
	t.Run("DEAD_LETTER", func(t *testing.T) {
		e := setup(WithSlack(2*time.Second), WithLateness(stream.LateDeadLetter))
		var dead []stream.DeadLetter
		e.OnDeadLetter(func(dl stream.DeadLetter) { dead = append(dead, dl) })
		if err := push(e, 3); err != nil {
			t.Fatalf("DEAD_LETTER must not error: %v", err)
		}
		if len(dead) != 1 || dead[0].Reason != stream.DeadLate || dead[0].Stream != "s" {
			t.Fatalf("dead letters: %v", dead)
		}
		if dead[0].Tuple == nil || !errors.Is(dead[0].Err, stream.ErrLate) {
			t.Fatalf("record must carry the tuple and cause: %+v", dead[0])
		}
		if st := e.EngineStats(); st.DeadLettered != 1 {
			t.Fatalf("stats: %+v", st)
		}
	})
}

// TestMalformedAndOversizedDeadLetter: with an ingest stage configured,
// screening failures quarantine instead of erroring the push.
func TestMalformedAndOversizedDeadLetter(t *testing.T) {
	e := New(WithSlack(time.Second), WithMaxTupleBytes(256))
	mustExec(t, e, `CREATE STREAM s(v INT, pad);`)
	var dead []stream.DeadLetter
	e.OnDeadLetter(func(dl stream.DeadLetter) { dead = append(dead, dl) })
	if err := e.Push("s", ts(time.Second), stream.Str("not an int"), stream.Null); err != nil {
		t.Fatalf("malformed row must quarantine, not error: %v", err)
	}
	if err := e.PushTuple("s", mustOversized(t, e)); err != nil {
		t.Fatalf("oversized row must quarantine, not error: %v", err)
	}
	if len(dead) != 2 || dead[0].Reason != stream.DeadMalformed || dead[1].Reason != stream.DeadOversized {
		t.Fatalf("dead letters: %v", dead)
	}
	st := e.EngineStats()
	if st.Ingested != 2 || st.DeadLettered != 2 || st.Emitted != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// mustOversized builds a valid but enormous tuple on stream s's schema.
func mustOversized(t *testing.T, e *Engine) *stream.Tuple {
	t.Helper()
	schema, ok := e.StreamSchema("s")
	if !ok {
		t.Fatal("stream s missing")
	}
	tup := &stream.Tuple{Schema: schema, TS: ts(2 * time.Second),
		Vals: []stream.Value{stream.Int(1), stream.Str(strings.Repeat("x", 4096))}}
	return tup
}

// TestPanicIsolation: a panicking UDF quarantines only the query evaluating
// it; the sibling query and the engine keep running, and the dead-letter
// record carries the query name, offending tuple, and stack.
func TestPanicIsolation(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE STREAM s(v);`)
	e.Funcs().Register("explode", func(args []stream.Value) (stream.Value, error) {
		if n, ok := args[0].AsInt(); ok && n == 3 {
			panic("kaboom")
		}
		return args[0], nil
	})
	var dead []stream.DeadLetter
	e.OnDeadLetter(func(dl stream.DeadLetter) { dead = append(dead, dl) })
	var doomedRows, healthyRows int
	doomed, err := e.RegisterQuery("doomed", `SELECT explode(v) FROM s`, func(Row) { doomedRows++ })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterQuery("healthy", `SELECT v FROM s`, func(Row) { healthyRows++ }); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if err := e.Push("s", ts(time.Duration(i)*time.Second), stream.Int(int64(i))); err != nil {
			t.Fatalf("push %d after panic must succeed: %v", i, err)
		}
	}
	if q, qErr := doomed.Quarantined(); !q || qErr == nil || !strings.Contains(qErr.Error(), "kaboom") {
		t.Fatalf("doomed not quarantined: %v %v", q, qErr)
	}
	if doomedRows != 2 {
		t.Fatalf("doomed emitted %d rows before the fault, want 2", doomedRows)
	}
	if healthyRows != 6 {
		t.Fatalf("healthy saw %d of 6 tuples", healthyRows)
	}
	if len(dead) != 1 || dead[0].Reason != stream.DeadQueryPanic || dead[0].Query != "doomed" {
		t.Fatalf("dead letters: %v", dead)
	}
	if dead[0].Tuple == nil || len(dead[0].Stack) == 0 {
		t.Fatal("record must carry the offending tuple and captured stack")
	}
	if n, _ := dead[0].Tuple.Get(0).AsInt(); n != 3 {
		t.Fatalf("offending tuple: %v", dead[0].Tuple.Vals)
	}
	if st := e.EngineStats(); st.QuarantinedQueries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Stats() surfaces the quarantine flag per query.
	for _, qs := range e.Stats() {
		if qs.Name == "doomed" && !qs.Quarantined {
			t.Fatal("QueryStats.Quarantined not set")
		}
		if qs.Name == "healthy" && qs.Quarantined {
			t.Fatal("healthy query wrongly quarantined")
		}
	}
}

// TestPanicIsolationBatchPath: the vectorized pushBatch path has the same
// recover boundary.
func TestPanicIsolationBatchPath(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE STREAM s(v);`)
	e.Funcs().Register("explode", func(args []stream.Value) (stream.Value, error) {
		if n, ok := args[0].AsInt(); ok && n == 2 {
			panic("batch kaboom")
		}
		return args[0], nil
	})
	if _, err := e.RegisterQuery("doomed", `SELECT explode(v) FROM s`, nil); err != nil {
		t.Fatal(err)
	}
	schema, _ := e.StreamSchema("s")
	items := make([]stream.Item, 0, 4)
	for i := 1; i <= 4; i++ {
		tp, err := stream.NewTuple(schema, ts(time.Duration(i)*time.Second), stream.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, stream.Of(tp))
	}
	if err := e.PushBatch(items); err != nil {
		t.Fatalf("batch push across a panic must succeed: %v", err)
	}
	if st := e.EngineStats(); st.QuarantinedQueries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Subsequent input still flows.
	if err := e.Push("s", ts(9*time.Second), stream.Int(9)); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultEngineUnchanged: without options the ingest stage is absent —
// boundary counters stay zero, Drain is a no-op, and the watermark is the
// engine clock.
func TestDefaultEngineUnchanged(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE STREAM s(v);`)
	mustPush(t, e, "s", 5*time.Second, stream.Int(1))
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	st := e.EngineStats()
	if st.Ingested != 0 || st.Emitted != 0 || st.PendingReorder != 0 {
		t.Fatalf("default engine grew boundary counters: %+v", st)
	}
	if st.Watermark != ts(5*time.Second) || e.Watermark() != ts(5*time.Second) {
		t.Fatalf("watermark should be the engine clock: %+v", st)
	}
}

// TestExactDedupOption: duplicates within the horizon are absorbed once the
// option is on; the accounting identity holds.
func TestExactDedupOption(t *testing.T) {
	e := New(WithSlack(time.Second), WithExactDedup())
	mustExec(t, e, `CREATE STREAM s(v);`)
	var rows int
	if _, err := e.RegisterQuery("q", `SELECT v FROM s`, func(Row) { rows++ }); err != nil {
		t.Fatal(err)
	}
	schema, _ := e.StreamSchema("s")
	tp, err := stream.NewTuple(schema, ts(time.Second), stream.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	dup := *tp
	for _, it := range []stream.Item{stream.Of(tp), stream.Of(&dup)} {
		if err := e.PushBatch([]stream.Item{it}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Fatalf("duplicate leaked: %d rows", rows)
	}
	st := e.EngineStats()
	if st.DroppedDup != 1 || st.Ingested != st.Emitted+st.DroppedDup {
		t.Fatalf("stats: %+v", st)
	}
}

// TestBatchVsSerialEquivalenceWithSlack: the same disordered input fed
// tuple-at-a-time and as one big batch — through engines with slack — must
// produce identical output, matching a strict engine fed in order.
func TestBatchVsSerialEquivalenceWithSlack(t *testing.T) {
	const n = 500
	const slack = time.Second
	type tup struct {
		ts stream.Timestamp
		v  int64
	}
	// Disordered arrival sequence: displacement bounded by the slack.
	seq := make([]tup, 0, n)
	for i := 0; i < n; i++ {
		seq = append(seq, tup{ts: ts(time.Duration(i) * 100 * time.Millisecond), v: int64(i)})
	}
	rngState := uint64(42)
	for i := len(seq) - 1; i > 0; i-- {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		j := i - int(rngState%4)
		if j < 0 {
			j = 0
		}
		if seq[i].ts-seq[j].ts < stream.TS(slack) {
			seq[i], seq[j] = seq[j], seq[i]
		}
	}

	setup := func(opts ...Option) (*Engine, *[]string) {
		e := New(opts...)
		mustExec(t, e, `CREATE STREAM s(tag, v);`)
		var rows []string
		for _, q := range []struct{ name, sql string }{
			{"filter", `SELECT tag, v FROM s WHERE v % 2 = 0`},
			{"agg", `SELECT tag, COUNT(*), SUM(v) FROM s GROUP BY tag`},
		} {
			name := q.name
			if _, err := e.RegisterQuery(q.name, q.sql, func(r Row) {
				rows = append(rows, fmt.Sprintf("%s|%v%v", name, r.Names, r.Vals))
			}); err != nil {
				t.Fatal(err)
			}
		}
		return e, &rows
	}
	itemsOf := func(e *Engine, src []tup) []stream.Item {
		schema, _ := e.StreamSchema("s")
		items := make([]stream.Item, 0, len(src))
		for _, u := range src {
			tp, err := stream.NewTuple(schema, u.ts, stream.Str(fmt.Sprintf("t%d", u.v%5)), stream.Int(u.v))
			if err != nil {
				t.Fatal(err)
			}
			items = append(items, stream.Of(tp))
		}
		return items
	}

	// Strict baseline: sorted input, no options.
	strict, strictRows := setup()
	ordered := append([]tup(nil), seq...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ts < ordered[j].ts })
	if err := strict.PushBatch(itemsOf(strict, ordered)); err != nil {
		t.Fatal(err)
	}

	// Slack engine, tuple at a time.
	serial, serialRows := setup(WithSlack(slack))
	for _, it := range itemsOf(serial, seq) {
		if err := serial.PushBatch([]stream.Item{it}); err != nil {
			t.Fatal(err)
		}
	}
	if err := serial.Drain(); err != nil {
		t.Fatal(err)
	}

	// Slack engine, one big batch.
	batch, batchRows := setup(WithSlack(slack))
	if err := batch.PushBatch(itemsOf(batch, seq)); err != nil {
		t.Fatal(err)
	}
	if err := batch.Drain(); err != nil {
		t.Fatal(err)
	}

	want := append([]string(nil), *strictRows...)
	sort.Strings(want)
	for label, got := range map[string][]string{"serial": *serialRows, "batch": *batchRows} {
		have := append([]string(nil), got...)
		sort.Strings(have)
		if len(have) != len(want) {
			t.Fatalf("%s: %d rows vs strict %d", label, len(have), len(want))
		}
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("%s row %d: %s vs strict %s", label, i, have[i], want[i])
			}
		}
	}
}

// TestEPCPatternCompileError: a malformed constant EPC pattern fails at
// query registration, not per tuple (and certainly not with a panic).
func TestEPCPatternCompileError(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE STREAM s(code);`)
	_, err := e.RegisterQuery("bad", `SELECT code FROM s WHERE epc_match(code, '20.[9999-5]')`, nil)
	if err == nil || !strings.Contains(err.Error(), "epc_match pattern") {
		t.Fatalf("want compile-time pattern error, got %v", err)
	}
	// A valid pattern still registers.
	if _, err := e.RegisterQuery("good", `SELECT code FROM s WHERE epc_match(code, '20.*.[5000-9999]')`, nil); err != nil {
		t.Fatal(err)
	}
}
