package esl

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/stream"
)

func benchEngine(b *testing.B, opts ...Option) *Engine {
	b.Helper()
	e := New(append([]Option{WithSlack(100 * time.Millisecond), WithLateness(stream.LateDeadLetter)}, opts...)...)
	if _, err := e.Exec("CREATE STREAM A(tagid, n); CREATE STREAM B(tagid, n);"); err != nil {
		b.Fatal(err)
	}
	if _, err := e.RegisterQuery("filter", "SELECT tagid, n FROM A WHERE n % 3 = 0", func(r Row) {}); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchItems(b *testing.B, e *Engine, n int) []stream.Item {
	b.Helper()
	schemaA, _ := e.StreamSchema("A")
	schemaB, _ := e.StreamSchema("B")
	items := make([]stream.Item, 0, n)
	for i := 0; i < n; i++ {
		schema := schemaA
		if i%2 == 1 {
			schema = schemaB
		}
		tu, err := stream.NewTuple(schema, stream.Timestamp((i+1)*10),
			stream.Str(fmt.Sprintf("tag%d", i%64)), stream.Int(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, stream.Of(tu))
	}
	return items
}

func feedBench(b *testing.B, e *Engine, items []stream.Item) {
	b.Helper()
	const batch = 256
	for off := 0; off < len(items); off += batch {
		hi := off + batch
		if hi > len(items) {
			hi = len(items)
		}
		if err := e.PushBatch(items[off:hi]); err != nil {
			b.Fatal(err)
		}
	}
	e.Drain()
}

func BenchmarkPushBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchEngine(b)
		items := benchItems(b, e, 50000)
		b.StartTimer()
		feedBench(b, e, items)
	}
}

func BenchmarkPushJournaled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		e := benchEngine(b, WithJournal(dir))
		items := benchItems(b, e, 50000)
		b.StartTimer()
		feedBench(b, e, items)
		b.StopTimer()
		_ = e.CloseJournal()
	}
}
