package esl

import (
	"sort"

	"repro/internal/spec"
)

// QueryStats is an observability snapshot for one continuous query.
type QueryStats struct {
	Name string
	// Emitted counts output rows since registration.
	Emitted int
	// State counts tuples/rows retained by the query's operators (window
	// buffers, pending matches, group accumulators' inputs).
	State int
	// Kind names the operator family running the query.
	Kind string
	// Quarantined reports whether panic isolation disabled the query.
	Quarantined bool
	// Routed counts tuples the routing index delivered to this query;
	// Skipped counts arrivals on its input streams the index proved the
	// query could not react to. Routed+Skipped is the scan-all delivery
	// count.
	Routed  uint64
	Skipped uint64
	// Runs counts the live partial-match runs held by a SEQ-family query.
	Runs int
	// Consistency is the query's speculation level (STRICT unless registered
	// FAST or MIDDLE through RegisterQueryOpts on a slack-configured engine).
	Consistency spec.Level
	// SpecPending / SpecRetracted gauge the speculation layer for FAST and
	// MIDDLE queries: live unconfirmed assertions and cumulative − records.
	SpecPending   int
	SpecRetracted uint64
}

// stateSizer is implemented by operators that can report retained state.
type stateSizer interface {
	stateSize() int
	kind() string
}

func (op *eventOp) stateSize() int {
	if op.seq != nil {
		return op.seq.StateSize()
	}
	return op.exc.StateSize()
}

func (op *eventOp) kind() string { return "event(" + op.kindName + ")" }

func (op *eventOp) runCount() int {
	if op.seq != nil {
		return op.seq.RunCount()
	}
	return 0
}

func (op *filterProjectOp) stateSize() int {
	n := len(op.pending)
	for _, ex := range op.exists {
		n += ex.buffer.Len()
	}
	return n
}

func (op *filterProjectOp) kind() string { return "transducer" }

func (op *aggregateOp) stateSize() int {
	n := 0
	if op.timeBuf != nil {
		n += op.timeBuf.Len()
	}
	n += len(op.rowBuf)
	for _, chain := range op.groups {
		n += len(chain)
	}
	return n
}

func (op *aggregateOp) kind() string { return "aggregate" }

// Stats returns a snapshot for every registered continuous query, sorted
// by name (unnamed queries sort first, in registration order).
func (e *Engine) Stats() []QueryStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	routed := make(map[*Query]uint64, len(e.queries))
	skipped := make(map[*Query]uint64, len(e.queries))
	for _, si := range e.streams {
		for i := range si.readers {
			rd := &si.readers[i]
			// A merged-group reader feeds every member of its group: each
			// member is credited the full delivery counts, exactly what its
			// own reader would have seen unmerged (the group guard is the
			// union of member guards, so routed may exceed a single member's
			// unmerged count — the skip totals stay conservative).
			if mop, ok := rd.q.op.(*mergedOp); ok {
				for _, mem := range mop.g.members {
					routed[mem.ev.q] += rd.routed
					skipped[mem.ev.q] += si.ntuples - rd.routed
				}
				continue
			}
			routed[rd.q] += rd.routed
			skipped[rd.q] += si.ntuples - rd.routed
		}
	}
	out := make([]QueryStats, 0, len(e.queries))
	for _, q := range e.queries {
		st := QueryStats{Name: q.Name, Emitted: q.emitted, Quarantined: q.quarantined,
			Routed: routed[q], Skipped: skipped[q]}
		if s, ok := q.op.(stateSizer); ok {
			st.State = s.stateSize()
			st.Kind = s.kind()
		}
		if rc, ok := q.op.(interface{ runCount() int }); ok {
			st.Runs = rc.runCount()
		}
		if e.spc != nil {
			if sq := e.spc.find(q); sq != nil {
				st.Consistency = sq.level
				rs := sq.rec.Stats()
				st.SpecPending = rs.Pending
				st.SpecRetracted = rs.Retracted
			}
		}
		out = append(out, st)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
