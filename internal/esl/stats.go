package esl

import "sort"

// QueryStats is an observability snapshot for one continuous query.
type QueryStats struct {
	Name string
	// Emitted counts output rows since registration.
	Emitted int
	// State counts tuples/rows retained by the query's operators (window
	// buffers, pending matches, group accumulators' inputs).
	State int
	// Kind names the operator family running the query.
	Kind string
	// Quarantined reports whether panic isolation disabled the query.
	Quarantined bool
}

// stateSizer is implemented by operators that can report retained state.
type stateSizer interface {
	stateSize() int
	kind() string
}

func (op *eventOp) stateSize() int {
	if op.seq != nil {
		return op.seq.StateSize()
	}
	return op.exc.StateSize()
}

func (op *eventOp) kind() string { return "event(" + op.kindName + ")" }

func (op *filterProjectOp) stateSize() int {
	n := len(op.pending)
	for _, ex := range op.exists {
		n += ex.buffer.Len()
	}
	return n
}

func (op *filterProjectOp) kind() string { return "transducer" }

func (op *aggregateOp) stateSize() int {
	n := 0
	if op.timeBuf != nil {
		n += op.timeBuf.Len()
	}
	n += len(op.rowBuf)
	for _, chain := range op.groups {
		n += len(chain)
	}
	return n
}

func (op *aggregateOp) kind() string { return "aggregate" }

// Stats returns a snapshot for every registered continuous query, sorted
// by name (unnamed queries sort first, in registration order).
func (e *Engine) Stats() []QueryStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]QueryStats, 0, len(e.queries))
	for _, q := range e.queries {
		st := QueryStats{Name: q.Name, Emitted: q.emitted, Quarantined: q.quarantined}
		if s, ok := q.op.(stateSizer); ok {
			st.State = s.stateSize()
			st.Kind = s.kind()
		}
		out = append(out, st)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
