package esl

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/stream"
)

func ts(d time.Duration) stream.Timestamp { return stream.TS(d) }

// collect registers the query and gathers emitted rows.
func collect(t *testing.T, e *Engine, sql string) *[]Row {
	t.Helper()
	rows := &[]Row{}
	if _, err := e.RegisterQuery("t", sql, func(r Row) { *rows = append(*rows, r) }); err != nil {
		t.Fatalf("register %q: %v", sql, err)
	}
	return rows
}

func mustExec(t *testing.T, e *Engine, script string) {
	t.Helper()
	if _, err := e.Exec(script); err != nil {
		t.Fatalf("exec: %v", err)
	}
}

func mustPush(t *testing.T, e *Engine, name string, at time.Duration, vals ...stream.Value) {
	t.Helper()
	if err := e.Push(name, ts(at), vals...); err != nil {
		t.Fatalf("push %s: %v", name, err)
	}
}

// ---- Example 1: duplicate filtering ----------------------------------------

func TestExample1DuplicateFiltering(t *testing.T) {
	e := New()
	mustExec(t, e, `
		CREATE STREAM readings(reader_id, tag_id, read_time);
		CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
	`)
	var cleaned []*stream.Tuple
	if err := e.Subscribe("cleaned_readings", func(tu *stream.Tuple) { cleaned = append(cleaned, tu) }); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, paperQueries["example1_dedup"])

	push := func(at time.Duration, reader, tag string) {
		mustPush(t, e, "readings", at, stream.Str(reader), stream.Str(tag), stream.Null)
	}
	push(0, "r1", "t1")                    // kept
	push(200*time.Millisecond, "r1", "t1") // dup within 1s
	push(400*time.Millisecond, "r1", "t2") // different tag: kept
	push(600*time.Millisecond, "r2", "t1") // different reader: kept
	push(1500*time.Millisecond, "r1", "t1")
	// ^ 1.3s after the last (r1,t1) duplicate at 0.2s — the threshold is
	// against ANY identical reading in the past second, so kept.
	push(2000*time.Millisecond, "r1", "t1") // 0.5s after previous: dup

	if len(cleaned) != 4 {
		for _, c := range cleaned {
			t.Logf("cleaned: %v", c)
		}
		t.Fatalf("cleaned count = %d, want 4", len(cleaned))
	}
	wantTags := []string{"t1", "t2", "t1", "t1"}
	for i, c := range cleaned {
		if c.Field("tag_id").String() != wantTags[i] {
			t.Errorf("row %d: %v", i, c)
		}
	}
}

// ---- Example 2: location tracking (stream -> DB update) --------------------

func TestExample2LocationTracking(t *testing.T) {
	e := New()
	mustExec(t, e, `
		STREAM tag_locations(readerid, tid, tagtime, loc);
		TABLE object_movement(tagid, location, start_time);
		CREATE INDEX ON object_movement(tagid);
	`)
	mustExec(t, e, paperQueries["example2_location"])

	move := func(at time.Duration, tag, loc string) {
		mustPush(t, e, "tag_locations", at, stream.Str("rd"), stream.Str(tag), stream.Null, stream.Str(loc))
	}
	move(1*time.Second, "obj1", "dock")
	move(2*time.Second, "obj1", "dock") // unchanged: no insert
	move(3*time.Second, "obj1", "floor")
	move(4*time.Second, "obj2", "dock")
	move(5*time.Second, "obj1", "floor") // unchanged
	move(6*time.Second, "obj1", "dock")  // obj1 was at dock before: the paper's
	// query checks the full movement history, so no new row

	tbl, _ := e.Store().Get("object_movement")
	if tbl.Len() != 3 {
		t.Fatalf("object_movement rows = %d, want 3", tbl.Len())
	}
	rows, err := e.Query(`SELECT tagid, location FROM object_movement WHERE tagid = 'obj1'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("obj1 history = %v", rows)
	}
}

// ---- Example 3: EPC-pattern aggregation -------------------------------------

func TestExample3EPCAggregation(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE STREAM readings(reader_id, tag_id, read_time);`)
	// The paper's query counts tid; our stream uses tag_id per the schema
	// declared earlier in the paper, so alias it in the query.
	rows := collect(t, e, `
		SELECT count(tag_id) FROM readings WHERE tag_id LIKE '20.%.%'
		AND extract_serial(tag_id) > 5000
		AND extract_serial(tag_id) < 9999`)

	push := func(at time.Duration, tid string) {
		mustPush(t, e, "readings", at, stream.Str("r1"), stream.Str(tid), stream.Null)
	}
	push(1*time.Second, "20.77.6000") // match
	push(2*time.Second, "21.77.6000") // wrong company
	push(3*time.Second, "20.77.4000") // serial too low
	push(4*time.Second, "20.88.9000") // match
	push(5*time.Second, "garbage")    // malformed: UDF yields NULL, filtered
	push(6*time.Second, "20.1.10000") // serial too high
	push(7*time.Second, "20.2.9998")  // match
	push(8*time.Second, "20.2.abc")   // non-numeric serial: NULL
	if len(*rows) != 3 {              // cumulative count emits once per match
		t.Fatalf("emissions = %d: %v", len(*rows), *rows)
	}
	if got, _ := (*rows)[2].Vals[0].AsInt(); got != 3 {
		t.Fatalf("final count = %v", (*rows)[2].Vals[0])
	}
}

// ---- Example 6: SEQ over the quality-check pipeline -------------------------

func declareQC(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, `
		CREATE STREAM C1(readerid, tagid, tagtime);
		CREATE STREAM C2(readerid, tagid, tagtime);
		CREATE STREAM C3(readerid, tagid, tagtime);
		CREATE STREAM C4(readerid, tagid, tagtime);
	`)
}

func pushQC(t *testing.T, e *Engine, name string, at time.Duration, tag string) {
	t.Helper()
	mustPush(t, e, name, at, stream.Str(name), stream.Str(tag), stream.Null)
}

func TestExample6SEQ(t *testing.T) {
	e := New()
	declareQC(t, e)
	rows := collect(t, e, paperQueries["example6_seq"])

	// Tag "a" goes through all four checks; tag "b" stops at C2.
	pushQC(t, e, "C1", 1*time.Second, "a")
	pushQC(t, e, "C1", 2*time.Second, "b")
	pushQC(t, e, "C2", 3*time.Second, "a")
	pushQC(t, e, "C2", 4*time.Second, "b")
	pushQC(t, e, "C3", 5*time.Second, "a")
	pushQC(t, e, "C4", 6*time.Second, "a")
	if len(*rows) != 1 {
		t.Fatalf("rows = %v", *rows)
	}
	r := (*rows)[0]
	if r.Get("tagid").String() != "a" {
		t.Errorf("tagid = %v", r.Get("tagid"))
	}
	// All four tagtimes projected.
	if len(r.Vals) != 5 {
		t.Errorf("cols = %d: %v", len(r.Vals), r)
	}
	if tt, _ := r.Vals[1].AsTime(); tt != ts(1*time.Second) {
		t.Errorf("C1.tagtime = %v", r.Vals[1])
	}
	if tt, _ := r.Vals[4].AsTime(); tt != ts(6*time.Second) {
		t.Errorf("C4.tagtime = %v", r.Vals[4])
	}
	// Tag b completing later still matches (partitioned by tagid).
	pushQC(t, e, "C3", 7*time.Second, "b")
	pushQC(t, e, "C4", 8*time.Second, "b")
	if len(*rows) != 2 || (*rows)[1].Get("tagid").String() != "b" {
		t.Fatalf("rows = %v", *rows)
	}
}

func TestExample6WindowedSEQ(t *testing.T) {
	e := New()
	declareQC(t, e)
	rows := collect(t, e, paperQueries["example6_windowed"])
	// Sequence spanning more than 30 minutes: rejected.
	pushQC(t, e, "C1", 1*time.Minute, "slow")
	pushQC(t, e, "C2", 2*time.Minute, "slow")
	pushQC(t, e, "C3", 3*time.Minute, "slow")
	pushQC(t, e, "C4", 45*time.Minute, "slow")
	if len(*rows) != 0 {
		t.Fatalf("rows = %v", *rows)
	}
	pushQC(t, e, "C1", 50*time.Minute, "fast")
	pushQC(t, e, "C2", 51*time.Minute, "fast")
	pushQC(t, e, "C3", 52*time.Minute, "fast")
	pushQC(t, e, "C4", 53*time.Minute, "fast")
	if len(*rows) != 1 || (*rows)[0].Get("tagid").String() != "fast" {
		t.Fatalf("rows = %v", *rows)
	}
}

// ---- Example 7 / Figure 1: star-sequence containment ------------------------

func declareContainment(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, `
		CREATE STREAM R1(readerid, tagid, tagtime);
		CREATE STREAM R2(readerid, tagid, tagtime);
	`)
}

func TestExample7Containment(t *testing.T) {
	e := New()
	declareContainment(t, e)
	rows := collect(t, e, paperQueries["example7_containment"])

	push := func(s string, at time.Duration, tag string) { pushQC(t, e, s, at, tag) }
	// Case 1: three products tightly packed, case read 2s after last.
	push("R1", 1000*time.Millisecond, "p1")
	push("R1", 1800*time.Millisecond, "p2")
	push("R1", 2500*time.Millisecond, "p3")
	push("R2", 4*time.Second, "case1")
	// Case 2 products arrive with >1s gap from case 1 products (Figure 1b).
	push("R1", 6*time.Second, "p4")
	push("R1", 6500*time.Millisecond, "p5")
	push("R2", 8*time.Second, "case2")

	if len(*rows) != 2 {
		t.Fatalf("rows = %v", *rows)
	}
	r0 := (*rows)[0]
	if n, _ := r0.Get("count_R1").AsInt(); n != 3 {
		t.Errorf("COUNT(R1*) = %v (row %v)", r0.Get("count_R1"), r0)
	}
	if tt, _ := r0.Get("first_tagtime").AsTime(); tt != ts(time.Second) {
		t.Errorf("FIRST(R1*).tagtime = %v", r0.Get("first_tagtime"))
	}
	if r0.Get("tagid").String() != "case1" {
		t.Errorf("case tag = %v", r0.Get("tagid"))
	}
	r1 := (*rows)[1]
	if n, _ := r1.Get("count_R1").AsInt(); n != 2 {
		t.Errorf("case2 COUNT = %v", r1.Get("count_R1"))
	}
	if r1.Get("tagid").String() != "case2" {
		t.Errorf("case2 tag = %v", r1.Get("tagid"))
	}
}

func TestExample7CaseTooLate(t *testing.T) {
	e := New()
	declareContainment(t, e)
	rows := collect(t, e, paperQueries["example7_containment"])
	pushQC(t, e, "R1", 1*time.Second, "p1")
	pushQC(t, e, "R2", 10*time.Second, "case1") // > 5s after LAST(R1*)
	if len(*rows) != 0 {
		t.Fatalf("rows = %v", *rows)
	}
}

// The multi-return variant: one output row per contained product.
func TestExample7PerItem(t *testing.T) {
	e := New()
	declareContainment(t, e)
	rows := collect(t, e, paperQueries["example7_per_item"])
	pushQC(t, e, "R1", 1000*time.Millisecond, "p1")
	pushQC(t, e, "R1", 1500*time.Millisecond, "p2")
	pushQC(t, e, "R1", 2000*time.Millisecond, "p3")
	pushQC(t, e, "R2", 3*time.Second, "case1")
	if len(*rows) != 3 {
		t.Fatalf("rows = %v", *rows)
	}
	for i, want := range []string{"p1", "p2", "p3"} {
		r := (*rows)[i]
		if r.Vals[0].String() != want || r.Vals[2].String() != "case1" {
			t.Errorf("row %d = %v", i, r)
		}
	}
}

// ---- Example 5: clinic workflow enforcement ---------------------------------

func declareClinic(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, `
		CREATE STREAM A1(readerid, tagid, tagtime);
		CREATE STREAM A2(readerid, tagid, tagtime);
		CREATE STREAM A3(readerid, tagid, tagtime);
	`)
}

func TestExample5ExceptionSeq(t *testing.T) {
	e := New()
	declareClinic(t, e)
	rows := collect(t, e, paperQueries["example5_exception"])

	// Correct workflow: no alerts.
	pushQC(t, e, "A1", 1*time.Minute, "staff")
	pushQC(t, e, "A2", 2*time.Minute, "staff")
	pushQC(t, e, "A3", 3*time.Minute, "staff")
	if len(*rows) != 0 {
		t.Fatalf("false alerts: %v", *rows)
	}
	// Violation: C directly follows A (wrong tuple + bad start).
	pushQC(t, e, "A1", 10*time.Minute, "staff")
	pushQC(t, e, "A3", 11*time.Minute, "staff")
	if len(*rows) != 2 {
		t.Fatalf("alerts = %v", *rows)
	}
	// Active expiration: a started sequence times out after 1 hour.
	*rows = (*rows)[:0]
	pushQC(t, e, "A1", 2*time.Hour, "staff")
	if err := e.Heartbeat(ts(4 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(*rows) != 1 {
		t.Fatalf("expiry alerts = %v", *rows)
	}
	// Partial projection: A1 bound, A2/A3 NULL.
	r := (*rows)[0]
	if r.Vals[0].IsNull() || !r.Vals[1].IsNull() || !r.Vals[2].IsNull() {
		t.Errorf("partial projection = %v", r)
	}
}

func TestExample5CLevel(t *testing.T) {
	e := New()
	declareClinic(t, e)
	rows := collect(t, e, paperQueries["example5_clevel"])
	pushQC(t, e, "A1", 1*time.Minute, "staff")
	pushQC(t, e, "A3", 2*time.Minute, "staff") // violation -> level 1 < 3 and level 0 < 3
	if len(*rows) != 2 {
		t.Fatalf("rows = %v", *rows)
	}
	// Completion emits nothing.
	pushQC(t, e, "A1", 10*time.Minute, "staff")
	pushQC(t, e, "A2", 11*time.Minute, "staff")
	pushQC(t, e, "A3", 12*time.Minute, "staff")
	if len(*rows) != 2 {
		t.Fatalf("completion should not emit: %v", *rows)
	}
}

// exception.level / exception.reason pseudo-columns.
func TestExceptionPseudoColumns(t *testing.T) {
	e := New()
	declareClinic(t, e)
	rows := collect(t, e, `
		SELECT exception.level, exception.reason, A1.tagid
		FROM A1, A2, A3
		WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]`)
	pushQC(t, e, "A2", 1*time.Minute, "staff") // bad start
	if len(*rows) != 1 {
		t.Fatalf("rows = %v", *rows)
	}
	r := (*rows)[0]
	if lv, _ := r.Get("level").AsInt(); lv != 0 {
		t.Errorf("level = %v", r.Get("level"))
	}
	if r.Get("reason").String() != "BAD_START" {
		t.Errorf("reason = %v", r.Get("reason"))
	}
}

// ---- Example 8: theft detection (PRECEDING AND FOLLOWING) -------------------

func TestExample8TheftDetection(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE STREAM tag_readings(tagid, tagtype, tagtime);`)
	// Inverted form of the paper's Example 8 text scenario: an item with no
	// person around is a potential theft. (The paper's literal query — a
	// person with no items — parses and runs too; see the parser tests.)
	rows := collect(t, e, `
		SELECT item.tagid
		FROM tag_readings AS item
		WHERE item.tagtype = 'item' AND NOT EXISTS
		  (SELECT * FROM tag_readings AS person
		   OVER [1 MINUTES PRECEDING AND FOLLOWING item]
		   WHERE person.tagtype = 'person')`)

	push := func(at time.Duration, tag, typ string) {
		mustPush(t, e, "tag_readings", at, stream.Str(tag), stream.Str(typ), stream.Null)
	}
	// Item with a person 30s before: not a theft.
	push(1*time.Minute, "alice", "person")
	push(90*time.Second, "tv-1", "item")
	// Item with a person 30s after: not a theft.
	push(10*time.Minute, "tv-2", "item")
	push(630*time.Second, "bob", "person")
	// Item with no person within a minute either way: theft.
	push(20*time.Minute, "tv-3", "item")
	push(30*time.Minute, "carol", "person") // far away
	// Decisions are deferred one minute past each item; advance time.
	if err := e.Heartbeat(ts(40 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if len(*rows) != 1 {
		t.Fatalf("alerts = %v", *rows)
	}
	if (*rows)[0].Get("tagid").String() != "tv-3" {
		t.Fatalf("alert = %v", (*rows)[0])
	}
}

// The paper's literal Example 8 query also runs end-to-end.
func TestExample8LiteralQuery(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE STREAM tag_readings(tagid, tagtype, tagtime);`)
	rows := collect(t, e, paperQueries["example8_theft"])
	push := func(at time.Duration, tag, typ string) {
		mustPush(t, e, "tag_readings", at, stream.Str(tag), stream.Str(typ), stream.Null)
	}
	push(1*time.Minute, "alice", "person") // no item within ±1min
	push(5*time.Minute, "tv-1", "item")
	push(5*time.Minute+30*time.Second, "bob", "person") // item 30s before
	if err := e.Heartbeat(ts(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if len(*rows) != 1 || (*rows)[0].Get("tagid").String() != "alice" {
		t.Fatalf("rows = %v", *rows)
	}
}

// ---- derived streams chain --------------------------------------------------

func TestDerivedStreamChaining(t *testing.T) {
	e := New()
	mustExec(t, e, `
		CREATE STREAM raw(reader_id, tag_id, read_time);
		CREATE STREAM cleaned(reader_id, tag_id, read_time);
	`)
	mustExec(t, e, `
		INSERT INTO cleaned
		SELECT * FROM raw AS r1
		WHERE NOT EXISTS
		  (SELECT * FROM TABLE( raw OVER (RANGE 1 seconds PRECEDING CURRENT)) AS r2
		   WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
	`)
	// Downstream query over the derived stream.
	rows := collect(t, e, `SELECT count(tag_id) FROM cleaned`)
	for i := 0; i < 6; i++ {
		// Three distinct readings, each duplicated 100ms later.
		at := time.Duration(i/2)*2*time.Second + time.Duration(i%2)*100*time.Millisecond
		mustPush(t, e, "raw", at, stream.Str("r"), stream.Str(fmt.Sprintf("t%d", i/2)), stream.Null)
	}
	if len(*rows) != 3 {
		t.Fatalf("emissions = %v", *rows)
	}
	if n, _ := (*rows)[2].Vals[0].AsInt(); n != 3 {
		t.Fatalf("count = %v", (*rows)[2].Vals[0])
	}
}

// ---- context retrieval: stream-table lookup join ----------------------------

func TestContextRetrievalJoin(t *testing.T) {
	e := New()
	mustExec(t, e, `
		CREATE STREAM readings(reader_id, tag_id, read_time);
		CREATE TABLE tag_info(tagid, owner, category);
		CREATE INDEX ON tag_info(tagid);
		INSERT INTO tag_info VALUES ('t1', 'alice', 'laptop'), ('t2', 'bob', 'monitor');
	`)
	rows := collect(t, e, `
		SELECT r.tag_id, i.owner, i.category
		FROM readings AS r, tag_info AS i
		WHERE r.tag_id = i.tagid`)
	mustPush(t, e, "readings", 1*time.Second, stream.Str("rd"), stream.Str("t1"), stream.Null)
	mustPush(t, e, "readings", 2*time.Second, stream.Str("rd"), stream.Str("t9"), stream.Null) // no context
	mustPush(t, e, "readings", 3*time.Second, stream.Str("rd"), stream.Str("t2"), stream.Null)
	if len(*rows) != 2 {
		t.Fatalf("rows = %v", *rows)
	}
	if (*rows)[0].Get("owner").String() != "alice" || (*rows)[1].Get("owner").String() != "bob" {
		t.Fatalf("rows = %v", *rows)
	}
}

// ---- ad-hoc snapshot queries -------------------------------------------------

func TestAdHocSnapshotQuery(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE STREAM tag_locations(readerid, tid, tagtime, loc);`)
	if err := e.RetainHistory("tag_locations", 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	mustPush(t, e, "tag_locations", 1*time.Minute, stream.Str("rd1"), stream.Str("patient7"), stream.Null, stream.Str("ward-a"))
	mustPush(t, e, "tag_locations", 5*time.Minute, stream.Str("rd2"), stream.Str("patient7"), stream.Null, stream.Str("radiology"))
	mustPush(t, e, "tag_locations", 6*time.Minute, stream.Str("rd2"), stream.Str("patient8"), stream.Null, stream.Str("ward-b"))

	// Where is patient7 right now? (Physician's ad-hoc inquiry, §2.1.)
	rows, err := e.Query(`SELECT loc FROM tag_locations WHERE tid = 'patient7'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Get("loc").String() != "radiology" {
		t.Fatalf("rows = %v", rows)
	}
	// Windowed snapshot: only the last 2 minutes.
	rows, err = e.Query(`SELECT tid FROM TABLE(tag_locations OVER (RANGE 2 MINUTES PRECEDING CURRENT)) AS x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("windowed rows = %v", rows)
	}
	// History eviction: push far in the future, old rows gone.
	mustPush(t, e, "tag_locations", 1*time.Hour, stream.Str("rd1"), stream.Str("patient9"), stream.Null, stream.Str("er"))
	rows, _ = e.Query(`SELECT tid FROM tag_locations`)
	if len(rows) != 1 {
		t.Fatalf("retention failed: %v", rows)
	}
}
