package esl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// genExpr builds a random expression tree of bounded depth over columns
// a, b, c.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return &Literal{Val: stream.Int(int64(rng.Intn(100)))}
		case 1:
			return &Literal{Val: stream.Float(float64(rng.Intn(100)) + 0.5)}
		case 2:
			return &Literal{Val: stream.Str(fmt.Sprintf("s%d", rng.Intn(10)))}
		case 3:
			return &ColRef{Name: []string{"a", "b", "c"}[rng.Intn(3)]}
		default:
			return &ColRef{Qualifier: "t", Name: []string{"a", "b", "c"}[rng.Intn(3)]}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return &Binary{Op: []string{"+", "-", "*", "/", "%"}[rng.Intn(5)],
			L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 1:
		return &Binary{Op: []string{"=", "<>", "<", "<=", ">", ">="}[rng.Intn(6)],
			L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 2:
		return &Binary{Op: []string{"AND", "OR"}[rng.Intn(2)],
			L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 3:
		return &Unary{Op: "NOT", X: genExpr(rng, depth-1)}
	case 4:
		return &Between{X: genExpr(rng, depth-1), Lo: genExpr(rng, depth-1),
			Hi: genExpr(rng, depth-1), Negate: rng.Intn(2) == 0}
	case 5:
		return &IsNull{X: genExpr(rng, depth-1), Negate: rng.Intn(2) == 0}
	case 6:
		return &Binary{Op: "LIKE", L: genExpr(rng, depth-1),
			R: &Literal{Val: stream.Str("s%")}}
	default:
		nargs := rng.Intn(3)
		c := &Call{Name: "COALESCE"}
		for i := 0; i <= nargs; i++ {
			c.Args = append(c.Args, genExpr(rng, depth-1))
		}
		return c
	}
}

// Property: printing any generated expression and reparsing it yields a
// print-identical tree (the printer emits valid, unambiguous ESL-EV).
func TestExprPrintParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 3)
		printed := ExprString(e)
		s, err := ParseOne("SELECT " + printed + " FROM t")
		if err != nil {
			t.Logf("parse failed for %q: %v", printed, err)
			return false
		}
		again := ExprString(s.(*Select).Items[0].Expr)
		if again != printed {
			t.Logf("not a fixpoint:\n  %s\n  %s", printed, again)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: evaluating any generated expression over a fixed row either
// yields a value or a typed error — never a panic.
func TestExprEvalNeverPanicsProperty(t *testing.T) {
	sch := stream.MustSchema("t",
		stream.Field{Name: "a"}, stream.Field{Name: "b"}, stream.Field{Name: "c"})
	tu := stream.MustTuple(sch, 0, stream.Int(1), stream.Float(2.5), stream.Str("x"))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		env := NewEnv(nil)
		env.BindTuple("t", tu)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %s: %v", ExprString(e), r)
			}
		}()
		env.Eval(e) // error or value both fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the lexer never panics and always terminates on arbitrary
// printable input.
func TestLexerRobustnessProperty(t *testing.T) {
	alphabet := "SELECT FROM WHERE ab12._,;()*<>='x%[]{}+-/| \n\t"
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < int(n); i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("lexer panic on %q: %v", b.String(), r)
			}
		}()
		Lex(b.String()) // error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the parser never panics on random token-ish text.
func TestParserRobustnessProperty(t *testing.T) {
	words := []string{
		"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "EXISTS", "SEQ",
		"OVER", "MODE", "RECENT", "(", ")", "[", "]", ",", ";", "*",
		"a", "b", "t", "1", "'s'", "5", "SECONDS", "PRECEDING", "FOLLOWING",
		"GROUP", "BY", "HAVING", "ORDER", "LIMIT", "INSERT", "INTO", "=", "<=",
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var parts []string
		for i := 0; i < int(n)%40; i++ {
			parts = append(parts, words[rng.Intn(len(words))])
		}
		src := strings.Join(parts, " ")
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panic on %q: %v", src, r)
			}
		}()
		Parse(src) // error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}
