package esl

import (
	"testing"
	"time"

	"repro/internal/stream"
)

// evalStr evaluates a standalone expression with an optional bound tuple.
func evalExpr(t *testing.T, exprSQL string, tuple *stream.Tuple, alias string) stream.Value {
	t.Helper()
	s, err := ParseOne("SELECT " + exprSQL + " FROM dual")
	if err != nil {
		t.Fatalf("parse %q: %v", exprSQL, err)
	}
	env := NewEnv(nil)
	if tuple != nil {
		env.BindTuple(alias, tuple)
	}
	v, err := env.Eval(s.(*Select).Items[0].Expr)
	if err != nil {
		t.Fatalf("eval %q: %v", exprSQL, err)
	}
	return v
}

func TestArithmeticAndComparison(t *testing.T) {
	cases := map[string]stream.Value{
		"1 + 2":                 stream.Int(3),
		"7 - 2 * 3":             stream.Int(1),
		"(7 - 2) * 3":           stream.Int(15),
		"7 / 2":                 stream.Int(3),
		"7.0 / 2":               stream.Float(3.5),
		"7 % 3":                 stream.Int(1),
		"-5 + 2":                stream.Int(-3),
		"1 / 0":                 stream.Null, // SQL-ish: NULL, not panic
		"5 % 0":                 stream.Null,
		"1 < 2":                 stream.Bool(true),
		"2 <= 2":                stream.Bool(true),
		"3 <> 4":                stream.Bool(true),
		"3 != 4":                stream.Bool(true),
		"'a' < 'b'":             stream.Bool(true),
		"2 BETWEEN 1 AND 3":     stream.Bool(true),
		"0 NOT BETWEEN 1 AND 3": stream.Bool(true),
		"NULL IS NULL":          stream.Bool(true),
		"1 IS NOT NULL":         stream.Bool(true),
		"'a' || 'b'":            stream.Str("ab"),
		"1 || 'b'":              stream.Str("1b"),
		"TRUE AND FALSE":        stream.Bool(false),
		"TRUE OR FALSE":         stream.Bool(true),
		"NOT TRUE":              stream.Bool(false),
	}
	for src, want := range cases {
		got := evalExpr(t, src, nil, "")
		if !got.Equal(want) || got.IsNull() != want.IsNull() {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	// NULL short-circuits per Kleene logic.
	cases := map[string]stream.Value{
		"NULL AND TRUE":  stream.Null,
		"NULL AND FALSE": stream.Bool(false),
		"FALSE AND NULL": stream.Bool(false),
		"NULL OR TRUE":   stream.Bool(true),
		"TRUE OR NULL":   stream.Bool(true),
		"NULL OR FALSE":  stream.Null,
		"NOT NULL":       stream.Null,
		"NULL = 1":       stream.Null,
		"NULL + 1":       stream.Null,
	}
	for src, want := range cases {
		got := evalExpr(t, src, nil, "")
		if got.IsNull() != want.IsNull() || (!want.IsNull() && !got.Equal(want)) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"20.123.456", "20.%.%", true},
		{"21.123.456", "20.%.%", false},
		{"abc", "abc", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"hello world", "%world", true},
		{"hello world", "hello%", true},
		{"hello world", "%lo wo%", true},
		{"aaa", "a%a", true},
		{"ab", "a%b%c", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.pat, got)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	sch := stream.MustSchema("s", stream.Field{Name: "a"}, stream.Field{Name: "tagtime"})
	tu := stream.MustTuple(sch, stream.TS(10*time.Second), stream.Int(1), stream.Null)
	// Time - Time -> duration (ns), comparable with INTERVAL.
	v := evalExpr(t, "s.tagtime - s.tagtime", tu, "s")
	if n, _ := v.AsInt(); n != 0 {
		t.Errorf("self-difference = %v", v)
	}
	v = evalExpr(t, "s.tagtime + 5 SECONDS", tu, "s")
	if ts, ok := v.AsTime(); !ok || ts != stream.TS(15*time.Second) {
		t.Errorf("time + interval = %v", v)
	}
	v = evalExpr(t, "s.tagtime - 5 SECONDS", tu, "s")
	if ts, ok := v.AsTime(); !ok || ts != stream.TS(5*time.Second) {
		t.Errorf("time - interval = %v", v)
	}
	// Interval literal itself.
	v = evalExpr(t, "90 SECONDS", nil, "")
	if n, _ := v.AsInt(); n != int64(90*time.Second) {
		t.Errorf("interval = %v", v)
	}
	v = evalExpr(t, "1.5 MINUTES", nil, "")
	if n, _ := v.AsInt(); n != int64(90*time.Second) {
		t.Errorf("fractional interval = %v", v)
	}
}

func TestColumnResolution(t *testing.T) {
	sch := stream.MustSchema("s", stream.Field{Name: "a"}, stream.Field{Name: "b"})
	tu := stream.MustTuple(sch, 0, stream.Int(1), stream.Int(2))
	if v := evalExpr(t, "s.a + s.b", tu, "s"); !v.Equal(stream.Int(3)) {
		t.Errorf("qualified = %v", v)
	}
	if v := evalExpr(t, "a + b", tu, "s"); !v.Equal(stream.Int(3)) {
		t.Errorf("unqualified = %v", v)
	}
	// Unknown columns error.
	env := NewEnv(nil)
	env.BindTuple("s", tu)
	if _, err := env.Eval(&ColRef{Qualifier: "s", Name: "zz"}); err == nil {
		t.Error("unknown qualified column should error")
	}
	if _, err := env.Eval(&ColRef{Name: "zz"}); err == nil {
		t.Error("unknown unqualified column should error")
	}
	if _, err := env.Eval(&ColRef{Qualifier: "nope", Name: "a"}); err == nil {
		t.Error("unknown qualifier should error")
	}
}

func TestScopeShadowing(t *testing.T) {
	sch := stream.MustSchema("x", stream.Field{Name: "v"})
	outerT := stream.MustTuple(sch, 0, stream.Int(1))
	innerT := stream.MustTuple(sch, 0, stream.Int(2))
	outer := NewEnv(nil)
	outer.BindTuple("o", outerT)
	inner := outer.Child()
	inner.BindTuple("i", innerT)
	// Unqualified resolves innermost-first.
	v, err := inner.Eval(&ColRef{Name: "v"})
	if err != nil || !v.Equal(stream.Int(2)) {
		t.Errorf("inner-first resolution: %v, %v", v, err)
	}
	// Outer still reachable by qualifier.
	v, _ = inner.Eval(&ColRef{Qualifier: "o", Name: "v"})
	if !v.Equal(stream.Int(1)) {
		t.Errorf("outer qualified: %v", v)
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := map[string]stream.Value{
		"extract_serial('20.1.555')":                 stream.Int(555),
		"extract_company('20.1.555')":                stream.Str("20"),
		"extract_product('20.1.555')":                stream.Str("1"),
		"extract_serial('garbage')":                  stream.Null, // failure -> NULL
		"epc_match('20.1.5555', '20.*.[5000-9999]')": stream.Bool(true),
		"epc_match('20.1.4', '20.*.[5000-9999]')":    stream.Bool(false),
		"length('abc')":                              stream.Int(3),
		"upper('ab')":                                stream.Str("AB"),
		"lower('AB')":                                stream.Str("ab"),
		"abs(-3)":                                    stream.Int(3),
		"abs(-2.5)":                                  stream.Float(2.5),
		"coalesce(NULL, 2, 3)":                       stream.Int(2),
	}
	for src, want := range cases {
		got := evalExpr(t, src, nil, "")
		if got.IsNull() != want.IsNull() || (!want.IsNull() && !got.Equal(want)) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestUserDefinedFunction(t *testing.T) {
	e := New()
	e.Funcs().Register("double_it", func(args []stream.Value) (stream.Value, error) {
		n, _ := args[0].AsInt()
		return stream.Int(2 * n), nil
	})
	mustExec(t, e, `CREATE STREAM s(v, ts);`)
	rows := collect(t, e, `SELECT double_it(v) FROM s WHERE double_it(v) > 5`)
	mustPush(t, e, "s", time.Second, stream.Int(2), stream.Null)   // 4: filtered
	mustPush(t, e, "s", 2*time.Second, stream.Int(5), stream.Null) // 10: kept
	if len(*rows) != 1 || !(*rows)[0].Vals[0].Equal(stream.Int(10)) {
		t.Fatalf("rows = %v", *rows)
	}
}

func TestUnknownFunctionErrors(t *testing.T) {
	env := NewEnv(nil)
	if _, err := env.Eval(&Call{Name: "NOPE"}); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := env.Eval(&Call{Name: "SUM", Args: []Expr{&Literal{Val: stream.Int(1)}}}); err == nil {
		t.Error("aggregate outside aggregation context should error")
	}
}
