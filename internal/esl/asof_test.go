package esl

// AS OF time-travel tests: grammar, snapshot-query resolution at checkpoint
// granularity, byte-identity of historical reads against recorded state
// (including after recovery into a fresh replica), version retention, and
// the per-batch version pin that keeps stream-table joins consistent while
// ad-hoc writers mutate the table.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/stream"
)

func TestParseAsOfClause(t *testing.T) {
	s, err := ParseOne(`SELECT tagid FROM location_history AS OF LSN 2000 WHERE tagid = 't1'`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*Select)
	if sel.AsOf == nil || !sel.AsOf.HasLSN || sel.AsOf.LSN != 2000 {
		t.Fatalf("AsOf = %+v", sel.AsOf)
	}
	s, err = ParseOne(`SELECT * FROM t AS OF TIMESTAMP 30 SECONDS`)
	if err != nil {
		t.Fatal(err)
	}
	sel = s.(*Select)
	if sel.AsOf == nil || sel.AsOf.HasLSN || sel.AsOf.TS != stream.TS(30*time.Second) {
		t.Fatalf("AsOf = %+v", sel.AsOf)
	}
	// TIMESTAMP keyword is optional in the anchor.
	if s, err = ParseOne(`SELECT * FROM t AS OF 500 MILLISECONDS`); err != nil {
		t.Fatal(err)
	}
	if ao := s.(*Select).AsOf; ao == nil || ao.TS != stream.TS(500*time.Millisecond) {
		t.Fatalf("AsOf = %+v", ao)
	}
	// String() round-trips through the parser.
	for _, src := range []string{
		`SELECT a FROM t AS OF LSN 42 WHERE a = 1`,
		`SELECT a FROM t AS OF TIMESTAMP 2 SECONDS`,
	} {
		st, err := ParseOne(src)
		if err != nil {
			t.Fatal(err)
		}
		s1 := SelectString(st.(*Select))
		st2, err := ParseOne(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		if s2 := SelectString(st2.(*Select)); s1 != s2 {
			t.Fatalf("round trip: %q != %q", s1, s2)
		}
	}
	// `AS alias` still works — only the word OF after AS means time travel.
	s, err = ParseOne(`SELECT i.owner FROM tag_info AS i WHERE i.owner = 'a'`)
	if err != nil {
		t.Fatal(err)
	}
	if alias := s.(*Select).From[0].Alias; alias != "i" {
		t.Fatalf("alias = %q", alias)
	}
	// ParseAsOf accepts the bare anchor forms QueryAsOf takes.
	for anchor, wantLSN := range map[string]bool{"LSN 7": true, "30 SECONDS": false, "TIMESTAMP 1 MINUTES": false} {
		ao, err := ParseAsOf(anchor)
		if err != nil || ao.HasLSN != wantLSN {
			t.Fatalf("ParseAsOf(%q) = %+v, %v", anchor, ao, err)
		}
	}
	for _, bad := range []string{"", "LSN", "LSN x", "7 PARSECS", "LSN 7 extra"} {
		if _, err := ParseAsOf(bad); err == nil {
			t.Errorf("ParseAsOf(%q) should fail", bad)
		}
	}
}

// asofFingerprint runs a snapshot query (optionally anchored to the past)
// and flattens the result for byte-identity comparison.
func asofFingerprint(t *testing.T, eng *Engine, sql, anchor string) string {
	t.Helper()
	rows, err := eng.QueryAsOf(sql, anchor)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%v%v;", r.Names, r.Vals)
	}
	return b.String()
}

// registerAsOfShape declares the stream/table shape shared by the primary
// engine and its recovered replica.
func registerAsOfShape(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, `
		CREATE STREAM moves(tagid, loc);
		CREATE TABLE location_history(tagid, loc, since);
		CREATE INDEX ON location_history(tagid);
	`)
}

// TestAsOfEndToEnd: checkpoint the engine at several LSNs while the table
// mutates, record each state, and verify AS OF returns byte-identical rows
// for every retained anchor — from the live engine and from a replica
// recovered off the same journal directory.
func TestAsOfEndToEnd(t *testing.T) {
	dir := t.TempDir()
	e := New(WithJournal(dir))
	registerAsOfShape(t, e)

	const q = `SELECT tagid, loc, since FROM location_history`
	type epoch struct {
		lsn   uint64
		at    time.Duration
		state string
	}
	var epochs []epoch
	push := func(i int, at time.Duration) {
		mustPush(t, e, "moves", at, stream.Str(fmt.Sprintf("t%d", i)), stream.Str("dock"))
	}
	for ep := 1; ep <= 3; ep++ {
		mustExec(t, e, fmt.Sprintf(
			`INSERT INTO location_history VALUES ('t%d', 'dock', %d), ('t%d', 'gate', %d)`,
			ep, ep, ep+10, ep))
		if ep == 2 { // some history rewrites an earlier epoch's rows
			mustExec(t, e, `UPDATE location_history SET loc = 'truck' WHERE tagid = 't1'`)
		}
		at := time.Duration(ep) * 10 * time.Second
		for i := 0; i < 3; i++ {
			push(ep*10+i, at+time.Duration(i)*time.Second)
		}
		if err := e.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, epoch{e.LastLSN(), at + 2*time.Second, asofFingerprint(t, e, q, "")})
	}
	// Uncheckpointed head motion after the last cut.
	mustExec(t, e, `INSERT INTO location_history VALUES ('t99', 'er', 9)`)
	head := asofFingerprint(t, e, q, "")
	if head == epochs[2].state {
		t.Fatal("head should differ from the last checkpoint")
	}

	checkHistory := func(label string, eng *Engine) {
		t.Helper()
		for i, ep := range epochs {
			got := asofFingerprint(t, eng, q, fmt.Sprintf("LSN %d", ep.lsn))
			if got != ep.state {
				t.Fatalf("%s: AS OF LSN %d = %s, want %s", label, ep.lsn, got, ep.state)
			}
			// The equivalent event-time anchor lands on the same cut.
			got = asofFingerprint(t, eng, q, fmt.Sprintf("%d MILLISECONDS", ep.at.Milliseconds()))
			if got != ep.state {
				t.Fatalf("%s: AS OF TIMESTAMP epoch %d diverges", label, i+1)
			}
		}
		// Anchors between checkpoints resolve DOWN to the older cut.
		got := asofFingerprint(t, eng, q, fmt.Sprintf("LSN %d", epochs[1].lsn-1))
		if got != epochs[0].state {
			t.Fatalf("%s: between-checkpoint anchor did not resolve down", label)
		}
	}
	checkHistory("live", e)

	// An anchor at/after the present reads the head.
	if got := asofFingerprint(t, e, q, fmt.Sprintf("LSN %d", e.LastLSN()+100)); got != head {
		t.Fatal("future anchor should read head")
	}
	// Too-old anchors name the oldest retained checkpoint.
	if _, err := e.QueryAsOf(q, "LSN 0"); err == nil || !strings.Contains(err.Error(), "oldest checkpoint") {
		t.Fatalf("too-old anchor error = %v", err)
	}
	// Streams have no versioned past.
	if _, err := e.Query(`SELECT * FROM moves AS OF LSN 1`); err == nil || !strings.Contains(err.Error(), "no versioned past") {
		t.Fatalf("stream AS OF error = %v", err)
	}
	// Continuous queries must not carry AS OF.
	if _, err := e.RegisterQuery("c", `SELECT f.loc FROM moves, location_history AS OF LSN 1 AS f WHERE moves.tagid = f.tagid`, func(Row) {}); err == nil {
		t.Fatal("continuous AS OF should be rejected")
	}

	if err := e.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// A replica recovered from the same journal directory serves the same
	// history: the snapshot carries every retained version, not just heads.
	r := New(WithJournal(dir))
	registerAsOfShape(t, r)
	if err := r.Recover(dir); err != nil {
		t.Fatal(err)
	}
	checkHistory("recovered", r)
	// The replica's head is the last checkpoint: the t99 insert was ad-hoc
	// DML after the final cut, outside the journal, so replay cannot (and
	// must not pretend to) restore it.
	if got := asofFingerprint(t, r, q, ""); got != epochs[2].state {
		t.Fatal("recovered head should be the last checkpointed state")
	}
}

// TestAsOfNeedsCheckpoint: without any checkpoint there is no history to
// anchor to, and the error says how to get some.
func TestAsOfNeedsCheckpoint(t *testing.T) {
	e := New()
	mustExec(t, e, `
		CREATE STREAM s(k);
		CREATE TABLE ti(k, v);
		INSERT INTO ti VALUES (1, 'a');
	`)
	mustPush(t, e, "s", 10*time.Second, stream.Int(1))
	_, err := e.Query(`SELECT * FROM ti AS OF TIMESTAMP 1 SECONDS`)
	if err == nil || !strings.Contains(err.Error(), "no checkpointed versions") {
		t.Fatalf("err = %v", err)
	}
}

// TestAsOfRetentionBound: WithRetainVersions(n) keeps the n newest
// checkpoint cuts; older anchors fail once the watermark passes them.
func TestAsOfRetentionBound(t *testing.T) {
	e := New(WithJournal(t.TempDir()), WithRetainVersions(2))
	mustExec(t, e, `
		CREATE STREAM s(k);
		CREATE TABLE ti(k, v);
	`)
	var lsns []uint64
	for i := 0; i < 4; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO ti VALUES (%d, 'v%d')`, i, i))
		mustPush(t, e, "s", time.Duration(i+1)*time.Second, stream.Int(int64(i)))
		if err := e.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, e.LastLSN())
	}
	for i, lsn := range lsns {
		_, err := e.Query(fmt.Sprintf(`SELECT k FROM ti AS OF LSN %d`, lsn))
		if i < 2 && err == nil {
			t.Errorf("lsn %d should have been released (retain 2)", lsn)
		}
		if i >= 2 && err != nil {
			t.Errorf("lsn %d should be retained: %v", lsn, err)
		}
	}
}

// TestMidBatchPinConsistency: a stream-table join batch reads exactly one
// DB version even while an external writer rewrites the whole table
// between (and during) batches. Every row emitted for one batch must carry
// the same generation marker — a batch that observed two versions would
// mix them. Run under -race.
func TestMidBatchPinConsistency(t *testing.T) {
	e := New()
	mustExec(t, e, `
		CREATE STREAM s(k);
		CREATE TABLE flags(k, gen);
		CREATE INDEX ON flags(k);
	`)
	const nrows = 8
	for i := 0; i < nrows; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO flags VALUES (%d, 'gen0')`, i))
	}
	var rows []string
	if _, err := e.RegisterQuery("j", `SELECT f.gen FROM s, flags AS f WHERE s.k = f.k`,
		func(r Row) { rows = append(rows, r.Get("gen").String()) }); err != nil {
		t.Fatal(err)
	}

	tbl, ok := e.store.Get("flags")
	if !ok {
		t.Fatal("flags table missing")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // rewrite every row's generation as fast as possible
		defer wg.Done()
		for g := 1; ; g++ {
			select {
			case <-stop:
				return
			default:
			}
			gen := stream.Str(fmt.Sprintf("gen%d", g))
			if _, err := tbl.Update(func(*db.Row) bool { return true }, map[int]stream.Value{1: gen}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	schema, _ := e.StreamSchema("s")
	const batches, perBatch = 200, 16
	for b := 0; b < batches; b++ {
		items := make([]stream.Item, perBatch)
		for i := range items {
			tu, err := stream.NewTuple(schema, ts(time.Duration(b*perBatch+i+1)*time.Millisecond),
				stream.Int(int64(i%nrows)))
			if err != nil {
				t.Fatal(err)
			}
			items[i] = stream.Of(tu)
		}
		before := len(rows)
		if err := e.PushBatch(items); err != nil {
			t.Fatal(err)
		}
		seg := rows[before:]
		if len(seg) != perBatch {
			t.Fatalf("batch %d emitted %d rows, want %d", b, len(seg), perBatch)
		}
		for _, g := range seg[1:] {
			if g != seg[0] {
				t.Fatalf("batch %d tore across versions: %v", b, seg)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentAsOfReads: ad-hoc current-state and AS OF queries race a
// feeding engine that checkpoints as it goes. Run under -race; the test
// asserts the queries stay well-formed, the race detector asserts the
// lock-free version reads are sound.
func TestConcurrentAsOfReads(t *testing.T) {
	e := New(WithJournal(t.TempDir()))
	registerAsOfShape(t, e)
	mustExec(t, e, `INSERT INTO location_history VALUES ('t0', 'dock', 0)`)
	mustPush(t, e, "moves", time.Millisecond, stream.Str("t0"), stream.Str("dock"))
	if err := e.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	firstLSN := e.LastLSN()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rows, err := e.Query(`SELECT tagid FROM location_history`); err != nil || len(rows) == 0 {
					t.Errorf("query: %d rows, %v", len(rows), err)
					return
				}
				rows, err := e.QueryAsOf(`SELECT tagid FROM location_history`, fmt.Sprintf("LSN %d", firstLSN))
				if err != nil || len(rows) != 1 {
					t.Errorf("as-of query: %d rows, %v", len(rows), err)
					return
				}
			}
		}()
	}
	for i := 1; i <= 60; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO location_history VALUES ('t%d', 'dock', %d)`, i, i))
		mustPush(t, e, "moves", time.Duration(i+1)*10*time.Millisecond,
			stream.Str(fmt.Sprintf("t%d", i)), stream.Str("dock"))
		if i%20 == 0 {
			if err := e.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
