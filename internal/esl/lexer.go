package esl

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer tokenizes ESL-EV source text. Comments run from "--" to end of
// line. String literals use single quotes with ” as the escape. Symbols
// cover SQL operators plus the bracket window syntax OVER [...].
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer builds a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, appending a TokEOF sentinel.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *Lexer) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("esl: line %d col %d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '-' && lx.peekAt(1) == '-':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil

scan:
	line, col := lx.line, lx.col
	b := lx.peekByte()
	switch {
	case isIdentStart(b):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Line: line, Col: col}, nil
		}
		return Token{Kind: TokIdent, Text: text, Line: line, Col: col}, nil

	case b >= '0' && b <= '9':
		start := lx.pos
		seenDot := false
		for lx.pos < len(lx.src) {
			c := lx.peekByte()
			if c >= '0' && c <= '9' {
				lx.advance()
				continue
			}
			// A dot is part of the number only when followed by a digit;
			// "readings.tag" style qualified refs never start with digits,
			// but EPC-ish text should be quoted anyway.
			if c == '.' && !seenDot && lx.peekAt(1) >= '0' && lx.peekAt(1) <= '9' {
				seenDot = true
				lx.advance()
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil

	case b == '\'':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, lx.errorf("unterminated string literal")
			}
			c := lx.advance()
			if c == '\'' {
				if lx.peekByte() == '\'' { // escaped quote
					lx.advance()
					sb.WriteByte('\'')
					continue
				}
				return Token{Kind: TokString, Text: sb.String(), Line: line, Col: col}, nil
			}
			sb.WriteByte(c)
		}

	default:
		// Multi-byte symbols first.
		for _, sym := range []string{"<=", ">=", "<>", "!=", "||"} {
			if strings.HasPrefix(lx.src[lx.pos:], sym) {
				lx.advance()
				lx.advance()
				return Token{Kind: TokSymbol, Text: sym, Line: line, Col: col}, nil
			}
		}
		if strings.ContainsRune("(),;.*+-/%<>=[]{}:", rune(b)) {
			lx.advance()
			return Token{Kind: TokSymbol, Text: string(b), Line: line, Col: col}, nil
		}
		if b < 0x80 && unicode.IsPrint(rune(b)) {
			return Token{}, lx.errorf("unexpected character %q", string(b))
		}
		return Token{}, lx.errorf("unexpected byte 0x%02x", b)
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || (b >= '0' && b <= '9')
}
