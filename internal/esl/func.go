package esl

import (
	"fmt"
	"strings"

	"repro/internal/epc"
	"repro/internal/stream"
)

// ScalarFunc is a user-defined (or built-in) scalar function callable from
// queries. Errors surface as SQL NULL results with the error recorded on
// the query's diagnostics, matching the tolerant handling RFID cleaning
// pipelines need for malformed tags.
type ScalarFunc func(args []stream.Value) (stream.Value, error)

// FuncRegistry resolves scalar function names (case-insensitive). A
// registry chains to the built-ins, so user registrations shadow them.
type FuncRegistry struct {
	funcs map[string]ScalarFunc
}

// NewFuncRegistry builds a registry pre-populated with the built-ins,
// including the paper's extract_serial UDF.
func NewFuncRegistry() *FuncRegistry {
	r := &FuncRegistry{funcs: make(map[string]ScalarFunc)}
	for name, f := range builtinFuncs.funcs {
		r.funcs[name] = f
	}
	return r
}

// Register installs (or replaces) a scalar function.
func (r *FuncRegistry) Register(name string, f ScalarFunc) {
	r.funcs[strings.ToUpper(name)] = f
}

// Lookup resolves a function by name.
func (r *FuncRegistry) Lookup(name string) (ScalarFunc, bool) {
	f, ok := r.funcs[strings.ToUpper(name)]
	return f, ok
}

// evalCall resolves scalar function calls; aggregate calls reaching here
// (outside an aggregation context) are an error.
func (e *Env) evalCall(n *Call) (stream.Value, error) {
	if isAggregateName(n.Name) {
		return stream.Null, fmt.Errorf("esl: aggregate %s used outside an aggregation context", n.Name)
	}
	reg := e.funcs
	if reg == nil {
		reg = builtinFuncs
	}
	f, ok := reg.Lookup(n.Name)
	if !ok {
		return stream.Null, fmt.Errorf("esl: unknown function %s", n.Name)
	}
	args := make([]stream.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := e.Eval(a)
		if err != nil {
			return stream.Null, err
		}
		args[i] = v
	}
	v, err := f(args)
	if err != nil {
		// Scalar UDF failures yield NULL (malformed EPC codes etc.), so a
		// single bad tag does not kill a continuous query.
		return stream.Null, nil
	}
	return v, nil
}

// isAggregateName reports whether the name is a built-in aggregate (UDAs
// are resolved against the engine's aggregate registry during planning).
func isAggregateName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	default:
		return false
	}
}

// builtinFuncs are always available.
var builtinFuncs = &FuncRegistry{funcs: map[string]ScalarFunc{
	// The paper's EPC helpers (Example 3 and the ALE pattern queries).
	"EXTRACT_SERIAL": func(args []stream.Value) (stream.Value, error) {
		s, err := oneString("extract_serial", args)
		if err != nil {
			return stream.Null, err
		}
		n, err := epc.ExtractSerial(s)
		if err != nil {
			return stream.Null, err
		}
		return stream.Int(n), nil
	},
	"EXTRACT_COMPANY": func(args []stream.Value) (stream.Value, error) {
		s, err := oneString("extract_company", args)
		if err != nil {
			return stream.Null, err
		}
		c, err := epc.ExtractCompany(s)
		if err != nil {
			return stream.Null, err
		}
		return stream.Str(c), nil
	},
	"EXTRACT_PRODUCT": func(args []stream.Value) (stream.Value, error) {
		s, err := oneString("extract_product", args)
		if err != nil {
			return stream.Null, err
		}
		p, err := epc.ExtractProduct(s)
		if err != nil {
			return stream.Null, err
		}
		return stream.Str(p), nil
	},
	// EPC_MATCH(code, pattern): ALE pattern matching as a UDF, e.g.
	// epc_match(tid, '20.*.[5000-9999]').
	"EPC_MATCH": func(args []stream.Value) (stream.Value, error) {
		if len(args) != 2 {
			return stream.Null, fmt.Errorf("epc_match needs 2 arguments")
		}
		code, ok1 := args[0].AsString()
		pat, ok2 := args[1].AsString()
		if !ok1 || !ok2 {
			return stream.Null, fmt.Errorf("epc_match needs string arguments")
		}
		p, err := epc.CompilePattern(pat)
		if err != nil {
			return stream.Null, err
		}
		return stream.Bool(p.Match(code)), nil
	},
	// Generic string/number helpers.
	"LENGTH": func(args []stream.Value) (stream.Value, error) {
		s, err := oneString("length", args)
		if err != nil {
			return stream.Null, err
		}
		return stream.Int(int64(len(s))), nil
	},
	"UPPER": func(args []stream.Value) (stream.Value, error) {
		s, err := oneString("upper", args)
		if err != nil {
			return stream.Null, err
		}
		return stream.Str(strings.ToUpper(s)), nil
	},
	"LOWER": func(args []stream.Value) (stream.Value, error) {
		s, err := oneString("lower", args)
		if err != nil {
			return stream.Null, err
		}
		return stream.Str(strings.ToLower(s)), nil
	},
	"ABS": func(args []stream.Value) (stream.Value, error) {
		if len(args) != 1 {
			return stream.Null, fmt.Errorf("abs needs 1 argument")
		}
		switch args[0].Kind() {
		case stream.KindInt:
			n, _ := args[0].AsInt()
			if n < 0 {
				n = -n
			}
			return stream.Int(n), nil
		case stream.KindFloat:
			f, _ := args[0].AsFloat()
			if f < 0 {
				f = -f
			}
			return stream.Float(f), nil
		case stream.KindNull:
			return stream.Null, nil
		default:
			return stream.Null, fmt.Errorf("abs on %s", args[0].Kind())
		}
	},
	"COALESCE": func(args []stream.Value) (stream.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return stream.Null, nil
	},
}}

func oneString(name string, args []stream.Value) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("%s needs 1 argument", name)
	}
	if args[0].IsNull() {
		return "", fmt.Errorf("%s of NULL", name)
	}
	s, ok := args[0].AsString()
	if !ok {
		return "", fmt.Errorf("%s needs a string argument", name)
	}
	return s, nil
}
