package esl

// Batch-boundary edge cases for the vectorized ingestion path: out-of-order
// tuples at and inside batch seams, empty and single-item batches, window
// eviction landing mid-batch, and heartbeats interleaved inside a batch.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/stream"
)

// bqReadingsEngine builds an engine with one fused filter-project query
// recording into rows.
func bqReadingsEngine(t *testing.T, rows *[]string) *Engine {
	t.Helper()
	e := New()
	bqExec(t, e, `CREATE STREAM readings(reader_id, tag_id, read_time);`)
	if _, err := e.RegisterQuery("f", `SELECT tag_id FROM readings WHERE tag_id LIKE 'a%'`,
		func(r Row) { *rows = append(*rows, bqRowLine(r)) }); err != nil {
		t.Fatal(err)
	}
	if e.TimeSensitive() {
		t.Fatal("fused filter must not be time-sensitive")
	}
	return e
}

func bqReading(t *testing.T, e *Engine, ts stream.Timestamp, tag string) stream.Item {
	t.Helper()
	schema, _ := e.StreamSchema("readings")
	tp, err := stream.NewTuple(schema, ts, stream.Str("rd"), stream.Str(tag), stream.Null)
	if err != nil {
		t.Fatal(err)
	}
	return stream.Of(tp)
}

// TestBatchOutOfOrderMidBatch: a regression inside a run is detected at its
// exact position — the in-order prefix is fully processed, the error text
// matches the per-item path verbatim, and the engine stays usable.
func TestBatchOutOfOrderMidBatch(t *testing.T) {
	var rows []string
	e := bqReadingsEngine(t, &rows)
	items := []stream.Item{
		bqReading(t, e, bqSec(5), "a1"),
		bqReading(t, e, bqSec(10), "a2"),
		bqReading(t, e, bqSec(7), "a3"), // behind the run's watermark
		bqReading(t, e, bqSec(12), "a4"),
	}
	err := e.PushBatch(items)
	if err == nil {
		t.Fatal("expected out-of-order error")
	}

	// The per-item path on an identical engine must fail identically.
	var serialRows []string
	se := bqReadingsEngine(t, &serialRows)
	var serialErr error
	for _, ts := range []int{5, 10, 7} {
		if serialErr = se.Push("readings", bqSec(ts), stream.Str("rd"), stream.Str("x"), stream.Null); serialErr != nil {
			break
		}
	}
	if serialErr == nil || err.Error() != serialErr.Error() {
		t.Fatalf("error mismatch:\nbatch:  %v\nserial: %v", err, serialErr)
	}
	if len(rows) != 2 || !strings.Contains(rows[0], "a1") || !strings.Contains(rows[1], "a2") {
		t.Fatalf("prefix rows = %v", rows)
	}
	if e.Now() != bqSec(10) {
		t.Fatalf("engine time = %v, want %v", e.Now(), bqSec(10))
	}
	// The engine remains consistent: an in-order arrival still processes.
	if err := e.PushBatch([]stream.Item{bqReading(t, e, bqSec(11), "a5")}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("post-error rows = %v", rows)
	}
}

// TestBatchOutOfOrderAtSeam: a tuple stale relative to the previous batch
// (not just the current run) errors with the serial message and processes
// nothing from the new batch.
func TestBatchOutOfOrderAtSeam(t *testing.T) {
	var rows []string
	e := bqReadingsEngine(t, &rows)
	if err := e.PushBatch([]stream.Item{bqReading(t, e, bqSec(20), "a1")}); err != nil {
		t.Fatal(err)
	}
	err := e.PushBatch([]stream.Item{
		bqReading(t, e, bqSec(15), "a2"), // stale across the seam
		bqReading(t, e, bqSec(25), "a3"),
	})
	if err == nil || !strings.Contains(err.Error(), "out-of-order arrival on readings") {
		t.Fatalf("err = %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if e.Now() != bqSec(20) {
		t.Fatalf("engine time moved to %v", e.Now())
	}
}

// TestBatchEmptyAndSingle: zero- and one-item batches flow through the
// fused kernel (and the heartbeat fold) without tripping edge conditions.
func TestBatchEmptyAndSingle(t *testing.T) {
	var rows []string
	e := bqReadingsEngine(t, &rows)
	if err := e.PushBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.PushBatch([]stream.Item{}); err != nil {
		t.Fatal(err)
	}
	if err := e.PushBatch([]stream.Item{stream.Heartbeat(bqSec(1))}); err != nil {
		t.Fatal(err)
	}
	if e.Now() != bqSec(1) {
		t.Fatalf("heartbeat-only batch: now = %v", e.Now())
	}
	if err := e.PushBatch([]stream.Item{bqReading(t, e, bqSec(2), "a1")}); err != nil {
		t.Fatal(err)
	}
	if err := e.PushBatch([]stream.Item{bqReading(t, e, bqSec(3), "b1")}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !strings.Contains(rows[0], "a1") {
		t.Fatalf("rows = %v", rows)
	}
}

// TestBatchWindowEvictionMidBatch: a single batch spans several window
// widths, so the aggregate's eviction cut lands mid-batch repeatedly; the
// running windowed count must match the per-item feed exactly.
func TestBatchWindowEvictionMidBatch(t *testing.T) {
	setup := func(e *Engine, rows *[]string) {
		bqExec(t, e, `CREATE STREAM C1(readerid, tagid, tagtime);`)
		if _, err := e.RegisterQuery("w",
			`SELECT COUNT(*) FROM C1 OVER (RANGE 5 SECONDS PRECEDING CURRENT)`,
			func(r Row) { *rows = append(*rows, bqRowLine(r)) }); err != nil {
			t.Fatal(err)
		}
	}
	times := []int{1, 2, 3, 9, 10, 11, 30, 31, 40}

	var want []string
	se := New()
	setup(se, &want)
	for _, at := range times {
		if err := se.Push("C1", bqSec(at), stream.Str("rd"), stream.Str("x"), stream.Time(bqSec(at))); err != nil {
			t.Fatal(err)
		}
	}

	var got []string
	be := New()
	setup(be, &got)
	schema, _ := be.StreamSchema("C1")
	var items []stream.Item
	for _, at := range times {
		tp, err := stream.NewTuple(schema, bqSec(at), stream.Str("rd"), stream.Str("x"), stream.Time(bqSec(at)))
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, stream.Of(tp))
	}
	if err := be.PushBatch(items); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("mid-batch eviction diverged:\nbatch:  %v\nserial: %v", got, want)
	}
}

// TestBatchInterleavedHeartbeats: heartbeats inside a batch advance the
// clock for subsequent runs (derived rows restamp against it) even though
// per-heartbeat advance work is coalesced on non-sensitive engines.
func TestBatchInterleavedHeartbeats(t *testing.T) {
	e := New()
	bqExec(t, e, `CREATE STREAM readings(reader_id, tag_id, read_time);`)
	bqExec(t, e, `INSERT INTO hot SELECT tag_id FROM readings WHERE tag_id LIKE 'a%'`)
	var derived []stream.Timestamp
	if err := e.Subscribe("hot", func(tp *stream.Tuple) { derived = append(derived, tp.TS) }); err != nil {
		t.Fatal(err)
	}
	items := []stream.Item{
		bqReading(t, e, bqSec(1), "a1"),
		stream.Heartbeat(bqSec(5)),
		bqReading(t, e, bqSec(8), "a2"),
		stream.Heartbeat(bqSec(12)),
	}
	if err := e.PushBatch(items); err != nil {
		t.Fatal(err)
	}
	if len(derived) != 2 || derived[0] != bqSec(1) || derived[1] != bqSec(8) {
		t.Fatalf("derived stamps = %v", derived)
	}
	if e.Now() != bqSec(12) {
		t.Fatalf("now = %v", e.Now())
	}

	// A tuple older than a preceding in-batch heartbeat is out of order,
	// exactly as the per-item path would report.
	err := e.PushBatch([]stream.Item{
		stream.Heartbeat(bqSec(20)),
		bqReading(t, e, bqSec(15), "a3"),
	})
	if err == nil || !strings.Contains(err.Error(), "out-of-order arrival") {
		t.Fatalf("err = %v", err)
	}
}

// TestBatchRunSplitsAcrossStreams: alternating schemas split a batch into
// single-tuple runs; output must still match the contiguous-run case.
func TestBatchRunSplitsAcrossStreams(t *testing.T) {
	mk := func() (*Engine, *[]string) {
		e := New()
		rows := &[]string{}
		bqExec(t, e, bqQCDDL)
		if _, err := e.RegisterQuery("seq", `
			SELECT C1.tagid FROM C1, C2 WHERE SEQ(C1, C2)
			AND C1.tagid = C2.tagid`,
			func(r Row) { *rows = append(*rows, bqRowLine(r)) }); err != nil {
			t.Fatal(err)
		}
		return e, rows
	}
	e, rows := mk()
	var items []stream.Item
	for i := 0; i < 10; i++ {
		stn := "C1"
		if i%2 == 1 {
			stn = "C2"
		}
		schema, _ := e.StreamSchema(stn)
		tp, err := stream.NewTuple(schema, bqSec(i+1),
			stream.Str(stn), stream.Str(fmt.Sprintf("t%d", i/2)), stream.Time(bqSec(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, stream.Of(tp))
	}
	if err := e.PushBatch(items); err != nil {
		t.Fatal(err)
	}
	if len(*rows) != 5 {
		t.Fatalf("rows = %v", *rows)
	}
}

// TestBatchHeartbeatEvictionExact: a heartbeat's advance must run at its
// exact position inside a batch. Its eviction prunes the expired star run
// holding C1@144 BEFORE C1@151 arrives, so C1@151 starts a fresh run and
// C2@152 completes it; deferring the advance to the batch boundary lets
// C1@151 join the doomed run and loses the match.
func TestBatchHeartbeatEvictionExact(t *testing.T) {
	mk := func(stn string, sec int, rid, tag string) bqEvt {
		return bqTup(stn, bqSec(sec), stream.Str(rid), stream.Str(tag), stream.Time(bqSec(sec)))
	}
	runBatchEquiv(t, bqScenario{
		evts: []bqEvt{
			mk("C1", 144, "R3", "t3"),
			bqBeat(bqSec(150)),
			mk("C1", 151, "R3", "t4"),
			mk("C2", 152, "R3", "t3"),
		},
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, `
				CREATE STREAM C1(readerid, tagid, tagtime);
				CREATE STREAM C2(readerid, tagid, tagtime);`)
			bqRegister(t, e, `
				SELECT C2.tagid FROM C1, C2
				WHERE SEQ(C1*, C2)
				OVER [5 SECONDS PRECEDING C2]
				AND C1.readerid = 'R3' AND C2.readerid = 'R3'`, "star", rec)
		},
	})
}

// TestBatchInvisibleTupleConsecutive: a tuple qualifying no step (mask 0)
// is invisible to the pattern and must not break a CONSECUTIVE run on the
// batched path — the serial Push early-outs before the automaton sees it.
func TestBatchInvisibleTupleConsecutive(t *testing.T) {
	mk := func(stn string, sec int, rid, tag string) bqEvt {
		return bqTup(stn, bqSec(sec), stream.Str(rid), stream.Str(tag), stream.Time(bqSec(sec)))
	}
	runBatchEquiv(t, bqScenario{
		evts: []bqEvt{
			mk("C1", 329, "R0", "t0"),
			mk("C2", 331, "R1", "t3"), // fails both step filters: invisible
			mk("C2", 332, "R0", "t4"),
		},
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, `
				CREATE STREAM C1(readerid, tagid, tagtime);
				CREATE STREAM C2(readerid, tagid, tagtime);`)
			bqRegister(t, e, `
				SELECT C2.tagid FROM C1, C2
				WHERE SEQ(C1, C2) OVER [3 SECONDS PRECEDING C2] MODE CONSECUTIVE
				AND C1.readerid = 'R0' AND C2.readerid = 'R0'`, "cons", rec)
		},
	})
}
