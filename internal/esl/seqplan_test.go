package esl

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// Access the compiled event op for white-box planner assertions.
func eventOpOf(t *testing.T, e *Engine, sql string) (*eventOp, *[]Row) {
	t.Helper()
	rows := &[]Row{}
	q, err := e.RegisterQuery("t", sql, func(r Row) { *rows = append(*rows, r) })
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	switch op := q.op.(type) {
	case *eventOp:
		return op, rows
	case *memberOp:
		// Merged SEQ queries wrap the compiled event op; the planner
		// artifacts under test live on the wrapped op unchanged.
		return op.ev, rows
	}
	t.Fatalf("expected eventOp, got %T", q.op)
	return nil, nil
}

func TestPlannerPartitionDetection(t *testing.T) {
	e := New()
	declareQC(t, e)
	op, _ := eventOpOf(t, e, `
		SELECT C1.tagid FROM C1, C2, C3, C4
		WHERE SEQ(C1, C2, C3, C4)
		AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid`)
	if !op.def.Partitioned() {
		t.Fatal("full equality chain should partition")
	}
	if op.def.Pred != nil {
		t.Fatal("all equality conjuncts should be absorbed into keys")
	}
}

func TestPlannerPartialEqualityFallsBackToPred(t *testing.T) {
	e := New()
	declareQC(t, e)
	// Only C1=C2 equality: cannot partition a 3-step pattern; the
	// condition must become a bind-time predicate instead.
	op, rows := eventOpOf(t, e, `
		SELECT C1.tagid FROM C1, C2, C3
		WHERE SEQ(C1, C2, C3) AND C1.tagid = C2.tagid`)
	if op.def.Partitioned() {
		t.Fatal("partial equality must not partition")
	}
	if op.def.Pred == nil {
		t.Fatal("equality should become a residual predicate")
	}
	pushQC(t, e, "C1", 1*time.Second, "a")
	pushQC(t, e, "C2", 2*time.Second, "b") // tag mismatch: cannot bind
	pushQC(t, e, "C2", 3*time.Second, "a")
	pushQC(t, e, "C3", 4*time.Second, "z") // C3 unconstrained
	if len(*rows) != 1 || (*rows)[0].Get("tagid").String() != "a" {
		t.Fatalf("rows = %v", *rows)
	}
}

func TestPlannerSingleAliasFilterPushdown(t *testing.T) {
	e := New()
	declareQC(t, e)
	op, rows := eventOpOf(t, e, `
		SELECT C1.tagid FROM C1, C2
		WHERE SEQ(C1, C2) AND C1.readerid = 'C1' AND C2.tagid LIKE 'keep%'`)
	if op.def.Steps[0].Filter == nil || op.def.Steps[1].Filter == nil {
		t.Fatal("single-alias conjuncts should push down to step filters")
	}
	if op.def.Pred != nil {
		t.Fatal("no residual predicates expected")
	}
	pushQC(t, e, "C1", 1*time.Second, "x")
	pushQC(t, e, "C2", 2*time.Second, "drop-me")
	pushQC(t, e, "C2", 3*time.Second, "keep-me")
	if len(*rows) != 1 {
		t.Fatalf("rows = %v", *rows)
	}
}

func TestPlannerMaxGapExtraction(t *testing.T) {
	e := New()
	declareContainment(t, e)
	op, _ := eventOpOf(t, e, `
		SELECT COUNT(R1*) FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`)
	if op.def.Steps[0].MaxGap != time.Second {
		t.Fatalf("MaxGap = %v, want 1s", op.def.Steps[0].MaxGap)
	}
	// Strict < shaves a nanosecond.
	e2 := New()
	declareContainment(t, e2)
	op2, _ := eventOpOf(t, e2, `
		SELECT COUNT(R1*) FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R1.tagtime - R1.previous.tagtime < 1 SECONDS`)
	if op2.def.Steps[0].MaxGap != time.Second-time.Nanosecond {
		t.Fatalf("strict MaxGap = %v", op2.def.Steps[0].MaxGap)
	}
}

func TestPlannerExpireAfterClause(t *testing.T) {
	e := New()
	declareContainment(t, e)
	op, _ := eventOpOf(t, e, `
		SELECT COUNT(R1*) FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE EXPIRE AFTER 10 SECONDS`)
	if op.def.ExpireAfter != 10*time.Second {
		t.Fatalf("ExpireAfter = %v", op.def.ExpireAfter)
	}
	pushQC(t, e, "R1", 1*time.Second, "p")
	if op.seq.StateSize() != 1 {
		t.Fatalf("state = %d", op.seq.StateSize())
	}
	if err := e.Heartbeat(ts(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if op.seq.StateSize() != 0 {
		t.Fatalf("idle run not expired: %d", op.seq.StateSize())
	}
}

func TestPlannerWindowAnchors(t *testing.T) {
	e := New()
	declareClinic(t, e)
	// Mid-sequence FOLLOWING anchor (the paper's A2 example).
	op, _ := eventOpOf(t, e, `
		SELECT A1.tagid FROM A1, A2, A3
		WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A2]`)
	w := op.def.Window
	if w == nil || !w.Following || w.Step != 1 || w.Span != time.Hour {
		t.Fatalf("window = %+v", w)
	}
	// Default anchors: PRECEDING -> last step; FOLLOWING -> first.
	e2 := New()
	declareClinic(t, e2)
	op2, _ := eventOpOf(t, e2, `
		SELECT A1.tagid FROM A1, A2, A3
		WHERE SEQ(A1, A2, A3) OVER [5 MINUTES PRECEDING CURRENT]`)
	if op2.def.Window.Step != 2 || op2.def.Window.Following {
		t.Fatalf("default PRECEDING anchor = %+v", op2.def.Window)
	}
}

func TestPlannerCLevelFlippedComparison(t *testing.T) {
	e := New()
	declareClinic(t, e)
	// Constant on the left: 3 > CLEVEL_SEQ(...) === CLEVEL < 3.
	_, rows := eventOpOf(t, e, `
		SELECT A1.tagid FROM A1, A2, A3
		WHERE 3 > (CLEVEL_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1])`)
	pushQC(t, e, "A2", 1*time.Minute, "s") // bad start, level 0 < 3
	if len(*rows) != 1 {
		t.Fatalf("rows = %v", *rows)
	}
	// Level-specific filter: only completion level exactly 1.
	e2 := New()
	declareClinic(t, e2)
	_, rows2 := eventOpOf(t, e2, `
		SELECT exception.level FROM A1, A2, A3
		WHERE (CLEVEL_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]) = 1`)
	pushQC(t, e2, "A2", 1*time.Minute, "s") // level 0: filtered out
	pushQC(t, e2, "A1", 2*time.Minute, "s")
	pushQC(t, e2, "A3", 3*time.Minute, "s") // breaks partial (A) at level 1
	if len(*rows2) != 1 {
		t.Fatalf("rows2 = %v", *rows2)
	}
	if lv, _ := (*rows2)[0].Get("level").AsInt(); lv != 1 {
		t.Fatalf("level = %v", (*rows2)[0])
	}
}

func TestPlannerRejectsBadEventQueries(t *testing.T) {
	e := New()
	declareQC(t, e)
	declareContainment(t, e)
	bad := []string{
		// Two star steps projected individually.
		`SELECT R1.tagid, X.tagid FROM R1, R2 AS X WHERE SEQ(R1*, X*)`,
		// Window with PRECEDING AND FOLLOWING on SEQ.
		`SELECT C1.tagid FROM C1, C2 WHERE SEQ(C1, C2) OVER [1 MINUTES PRECEDING AND FOLLOWING C2]`,
		// Anchor not an argument.
		`SELECT C1.tagid FROM C1, C2 WHERE SEQ(C1, C2) OVER [1 MINUTES PRECEDING C9]`,
		// Alias repeated in SEQ.
		`SELECT C1.tagid FROM C1, C2 WHERE SEQ(C1, C1)`,
		// Two SEQ operators.
		`SELECT C1.tagid FROM C1, C2, C3 WHERE SEQ(C1, C2) AND SEQ(C2, C3)`,
		// Star aggregate over a non-star argument.
		`SELECT COUNT(C1*) FROM C1, C2 WHERE SEQ(C1, C2)`,
		// Unknown exception pseudo-column.
		`SELECT exception.bogus FROM C1, C2 WHERE EXCEPTION_SEQ(C1, C2)`,
		// EXCEPTION_SEQ with star steps.
		`SELECT R2.tagid FROM R1, R2 WHERE EXCEPTION_SEQ(R1*, R2)`,
		// Ambiguous unqualified column across arguments.
		`SELECT C1.tagid FROM C1, C2 WHERE SEQ(C1, C2) AND tagid = 'x'`,
	}
	for _, sql := range bad {
		if _, err := e.RegisterQuery("x", sql, nil); err == nil {
			t.Errorf("should reject: %s", sql)
		}
	}
}

func TestSelfJoinAliasesOnOneStream(t *testing.T) {
	// Footnote 1: "the streams in the argument list of the operator may in
	// fact be the same data stream with different aliases."
	e := New()
	mustExec(t, e, `CREATE STREAM moves(readerid, tagid, tagtime);`)
	_, rows := eventOpOf(t, e, `
		SELECT a.tagtime, b.tagtime FROM moves AS a, moves AS b
		WHERE SEQ(a, b) MODE CONSECUTIVE AND a.tagid = b.tagid`)
	mustPush(t, e, "moves", 1*time.Second, stream.Str("r"), stream.Str("x"), stream.Null)
	mustPush(t, e, "moves", 2*time.Second, stream.Str("r"), stream.Str("x"), stream.Null)
	mustPush(t, e, "moves", 3*time.Second, stream.Str("r"), stream.Str("x"), stream.Null)
	// Consecutive pairs: (1,2) then (3,_) pending: the third tuple starts a
	// new sequence after the completed one.
	if len(*rows) != 1 {
		t.Fatalf("rows = %v", *rows)
	}
}

func TestEventQueryWindowEvictionViaHeartbeat(t *testing.T) {
	e := New()
	declareQC(t, e)
	op, _ := eventOpOf(t, e, `
		SELECT C1.tagid FROM C1, C2
		WHERE SEQ(C1, C2) OVER [10 SECONDS PRECEDING C2]`)
	for i := 0; i < 50; i++ {
		pushQC(t, e, "C1", time.Duration(i)*time.Second, "x")
	}
	if err := e.Heartbeat(ts(5 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if op.seq.StateSize() != 0 {
		t.Fatalf("heartbeat did not evict: %d", op.seq.StateSize())
	}
}

func TestExceptionQueryConsecutiveDefault(t *testing.T) {
	e := New()
	declareClinic(t, e)
	op, _ := eventOpOf(t, e, `
		SELECT A1.tagid FROM A1, A2, A3 WHERE EXCEPTION_SEQ(A1, A2, A3)`)
	if op.exc == nil {
		t.Fatal("exception matcher expected")
	}
	if op.exc.Def().Mode != core.ModeConsecutive {
		t.Fatalf("default mode = %v, want CONSECUTIVE per §3.1.3", op.exc.Def().Mode)
	}
}

func TestEventQueryProjectionWithArithmetic(t *testing.T) {
	e := New()
	declareContainment(t, e)
	_, rows := eventOpOf(t, e, `
		SELECT R2.tagtime - FIRST(R1*).tagtime AS span, COUNT(R1*) * 2 AS double_count
		FROM R1, R2 WHERE SEQ(R1*, R2) MODE CHRONICLE`)
	pushQC(t, e, "R1", 1*time.Second, "p1")
	pushQC(t, e, "R1", 2*time.Second, "p2")
	pushQC(t, e, "R2", 5*time.Second, "case")
	if len(*rows) != 1 {
		t.Fatalf("rows = %v", *rows)
	}
	r := (*rows)[0]
	if n, _ := r.Get("span").AsInt(); n != int64(4*time.Second) {
		t.Errorf("span = %v", r.Get("span"))
	}
	if n, _ := r.Get("double_count").AsInt(); n != 4 {
		t.Errorf("double_count = %v", r.Get("double_count"))
	}
}
