package esl

import (
	"fmt"
	"sort"
	"strings"
)

// Explain compiles a query without registering it and renders a plan
// description: which operator runs it, pushed-down filters, partition
// keys, windows and sinks. Useful for the CLI and for understanding how
// the planner treated a WHERE clause.
func (e *Engine) Explain(sql string) (string, error) {
	s, err := ParseOne(sql)
	if err != nil {
		return "", err
	}
	var target string
	var sel *Select
	switch st := s.(type) {
	case *Select:
		sel = st
	case *InsertSelect:
		target, sel = st.Target, st.Sel
	default:
		return "", fmt.Errorf("esl: EXPLAIN supports SELECT and INSERT...SELECT, got %T", s)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.selectReadsStream(sel) {
		for _, f := range sel.From {
			if _, ok := e.store.Get(f.Source); !ok {
				return "", fmt.Errorf("esl: unknown stream or table %q", f.Source)
			}
		}
		return "snapshot query (tables/retained history, evaluated once)\n  " + SelectString(sel), nil
	}
	q := &Query{stmt: sel, sink: func(Row) error { return nil }}
	op, inputs, err := e.compile(sel, q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	switch x := op.(type) {
	case *eventOp:
		fmt.Fprintf(&b, "temporal event query (%s)\n", x.kindName)
		fmt.Fprintf(&b, "  pattern: ")
		for i, st := range x.def.Steps {
			if i > 0 {
				b.WriteString(" ; ")
			}
			b.WriteString(st.Alias)
			if st.Star {
				b.WriteString("*")
			}
			if st.Filter != nil {
				b.WriteString("[filtered]")
			}
			if st.MaxGap > 0 {
				fmt.Fprintf(&b, "[gap<=%s]", st.MaxGap)
			}
		}
		fmt.Fprintf(&b, "\n  mode: %s\n", x.def.Mode)
		if x.def.Partitioned() {
			b.WriteString("  partitioned: per-key matching state (equality chain detected)\n")
		}
		if w := x.def.Window; w != nil {
			dir := "PRECEDING"
			if w.Following {
				dir = "FOLLOWING"
			}
			fmt.Fprintf(&b, "  window: %s %s %s\n", w.Span, dir, x.def.Steps[w.Step].Alias)
		}
		if x.def.Pred != nil {
			b.WriteString("  residual predicates evaluated at bind time\n")
		}
		if x.def.ExpireAfter > 0 {
			fmt.Fprintf(&b, "  idle partial matches expire after %s\n", x.def.ExpireAfter)
		}
		if x.starItemStep >= 0 {
			fmt.Fprintf(&b, "  multi-return: one row per %s tuple\n", x.starItemAlias)
		}
		if x.levelFilter != nil {
			b.WriteString("  CLEVEL comparison filters emissions by completion level\n")
		}
		for i, tiers := range x.filterTiers {
			if len(tiers) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  step %s filter: %s\n", x.def.Steps[i].Alias, strings.Join(tiers, ", "))
		}
		if x.fastProj != nil {
			b.WriteString("  projection: compiled column-copy fast path\n")
		}
		explainMergeLocked(&b, e, x, target)

	case *aggregateOp:
		b.WriteString("continuous aggregation\n")
		if x.win == nil {
			b.WriteString("  cumulative (emits running value per arrival)\n")
		} else if x.win.Rows {
			fmt.Fprintf(&b, "  sliding window: last %d rows\n", x.win.NRows)
		} else {
			fmt.Fprintf(&b, "  sliding window: RANGE %s PRECEDING (incremental removal: %v)\n", x.win.Preceding, x.removal)
		}
		fmt.Fprintf(&b, "  aggregates: %d; grouped: %v\n", len(x.aggs), len(x.groupBy) > 0)

	case *filterProjectOp:
		b.WriteString("stream transducer (filter/project)\n")
		if len(x.tables) > 0 {
			for _, jt := range x.tables {
				if jt.eqCol != "" {
					fmt.Fprintf(&b, "  lookup join %s via index candidate on %s\n", jt.alias, jt.eqCol)
				} else {
					fmt.Fprintf(&b, "  lookup join %s via scan\n", jt.alias)
				}
			}
		}
		for _, ex := range x.exists {
			kind := "EXISTS"
			if ex.node.Negate {
				kind = "NOT EXISTS"
			}
			fmt.Fprintf(&b, "  windowed %s over %s %s\n", kind, ex.alias, ex.win.windowText())
		}
		for _, te := range x.tableExists {
			kind := "EXISTS"
			if te.node.Negate {
				kind = "NOT EXISTS"
			}
			path := "scan"
			if te.eqCol != "" {
				path = "indexed lookup on " + te.eqCol
			}
			fmt.Fprintf(&b, "  table %s over %s via %s\n", kind, te.alias, path)
		}
		if x.deferred {
			fmt.Fprintf(&b, "  deferred decisions: FOLLOWING window holds outers %s past their arrival\n", x.maxFol)
		}

	default:
		fmt.Fprintf(&b, "%T\n", op)
	}

	var streams []string
	for s, aliases := range inputs {
		streams = append(streams, fmt.Sprintf("%s as %s", s, strings.Join(aliases, ",")))
	}
	sort.Strings(streams)
	fmt.Fprintf(&b, "  reads: %s\n", strings.Join(streams, "; "))
	if len(q.guards) > 0 {
		var guards []string
		for s, g := range q.guards {
			mode := "strict"
			if !g.strict {
				mode = "lenient"
			}
			guards = append(guards, fmt.Sprintf("%s: %s (%s)", s, g.describe(), mode))
		}
		sort.Strings(guards)
		fmt.Fprintf(&b, "  routing guard: %s\n", strings.Join(guards, "; "))
	}
	if target != "" {
		fmt.Fprintf(&b, "  sink: %s\n", target)
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

// explainMergeLocked renders the plan-merging verdict for a compiled event
// query: whether registration would share an automaton, at which tier, with
// whom — or why not.
func explainMergeLocked(b *strings.Builder, e *Engine, x *eventOp, target string) {
	switch {
	case e.noMerge:
		b.WriteString("  plan merging: disabled (WithoutPlanMerge)\n")
	case target != "":
		b.WriteString("  plan merging: not applicable (derived-stream sink)\n")
	case x.merge == nil:
		b.WriteString("  plan merging: not applicable (non-SEQ operator)\n")
	case !x.merge.eligible:
		fmt.Fprintf(b, "  plan merging: ineligible (%s)\n", x.merge.reason)
	default:
		tier := tierIdentical
		if x.merge.prefixSafe {
			tier = tierPrefix
		}
		fmt.Fprintf(b, "  plan merging: eligible, %s tier", tier)
		if !x.merge.prefixSafe && x.merge.reason != "" {
			fmt.Fprintf(b, " (prefix tier out: %s)", x.merge.reason)
		}
		b.WriteString("\n")
		if g := e.mergeGroupForLocked(x.merge); g != nil {
			names := make([]string, 0, len(g.members))
			for _, mem := range g.members {
				names = append(names, mem.ev.q.describe())
			}
			fmt.Fprintf(b, "  would join group %d sharing its automaton with: %s\n",
				g.id, strings.Join(names, ", "))
		} else {
			b.WriteString("  no compatible group live: would found a new one\n")
		}
	}
}

// windowText renders a window clause briefly for EXPLAIN.
func (w *WindowClause) windowText() string {
	if w == nil {
		return ""
	}
	switch {
	case w.HasPreceding && w.HasFollowing:
		return fmt.Sprintf("[%s PRECEDING AND FOLLOWING %s]", w.Preceding, anchorOrCurrent(w.Anchor))
	case w.HasFollowing:
		return fmt.Sprintf("[%s FOLLOWING %s]", w.Following, anchorOrCurrent(w.Anchor))
	default:
		return fmt.Sprintf("[%s PRECEDING %s]", w.Preceding, anchorOrCurrent(w.Anchor))
	}
}
