package esl

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/stream"
)

// Env is an expression-evaluation environment: an ordered scope of named
// bindings (stream tuples or table rows), optionally chained to an outer
// scope (for correlated sub-queries) and optionally carrying a temporal
// match (for star aggregates and the previous operator).
type Env struct {
	binds  []binding
	parent *Env
	// match + stepOf support FIRST/LAST/COUNT(X*) and X.previous.col when
	// evaluating over a (partial) temporal match.
	match  *core.Match
	stepOf map[string]int
	// prev maps a star alias to the tuple preceding the current candidate
	// during star-extension predicate checks.
	prev map[string]*stream.Tuple
	// funcs resolves scalar function calls (UDFs and built-ins).
	funcs *FuncRegistry
	// hooks evaluate planned sub-expressions (EXISTS sub-queries) that the
	// generic evaluator cannot compute itself. Keyed by AST node identity.
	hooks map[Expr]func(*Env) (stream.Value, error)
	// buf inlines the first few bindings so typical environments (one outer
	// tuple, a handful of SEQ steps) never allocate a separate slice.
	buf [4]binding
}

// binding is one named scope entry: a stream tuple (t, possibly nil for the
// unbound step of a partial match) or a table row (schema+vals). Storing
// the data directly instead of a per-bind closure keeps BindTuple
// allocation-free on the hot path.
type binding struct {
	alias  string
	t      *stream.Tuple
	schema *stream.Schema
	vals   []stream.Value
}

func (b *binding) get(col string) (stream.Value, bool) {
	if b.schema != nil { // table row
		if i, ok := b.schema.Col(col); ok {
			if i < len(b.vals) {
				return b.vals[i], true
			}
			return stream.Null, true
		}
		return stream.Null, false
	}
	if b.t == nil {
		return stream.Null, true // unbound step of a partial match: NULLs
	}
	if i, ok := b.t.Schema.Col(col); ok {
		return b.t.Get(i), true
	}
	return stream.Null, false
}

// NewEnv builds an empty environment using the given function registry
// (nil means built-ins only).
func NewEnv(funcs *FuncRegistry) *Env {
	if funcs == nil {
		funcs = builtinFuncs
	}
	e := &Env{funcs: funcs}
	e.binds = e.buf[:0]
	return e
}

// Child builds a nested scope (inner bindings shadow outer ones).
func (e *Env) Child() *Env {
	c := &Env{parent: e, funcs: e.funcs, match: e.match, stepOf: e.stepOf, prev: e.prev, hooks: e.hooks}
	c.binds = c.buf[:0]
	return c
}

// envPool recycles environments across per-tuple evaluations. An env may be
// pooled only when nothing produced during evaluation retains it (rows copy
// values out; hook closures receive it per call) — true for step filters,
// residual predicates and match projection, which dominate the hot path.
var envPool = sync.Pool{New: func() any { return new(Env) }}

// getEnv returns a pooled environment bound to funcs; release it with
// putEnv when evaluation is done.
func getEnv(funcs *FuncRegistry) *Env {
	e := envPool.Get().(*Env)
	if funcs == nil {
		funcs = builtinFuncs
	}
	e.funcs = funcs
	e.binds = e.buf[:0]
	return e
}

// getChildEnv is Child backed by the pool.
func getChildEnv(parent *Env) *Env {
	c := envPool.Get().(*Env)
	c.parent = parent
	c.funcs = parent.funcs
	c.match = parent.match
	c.stepOf = parent.stepOf
	c.prev = parent.prev
	c.hooks = parent.hooks
	c.binds = c.buf[:0]
	return c
}

// putEnv drops all references (tuples, matches, hook maps — child scopes
// share prev/hooks with their parents, so maps are released, not cleared)
// and returns the environment to the pool.
func putEnv(e *Env) {
	*e = Env{}
	envPool.Put(e)
}

// SetHook installs an evaluator for a planned sub-expression node.
func (e *Env) SetHook(node Expr, fn func(*Env) (stream.Value, error)) {
	if e.hooks == nil {
		e.hooks = make(map[Expr]func(*Env) (stream.Value, error))
	}
	e.hooks[node] = fn
}

// hook resolves a planned sub-expression evaluator up the scope chain.
func (e *Env) hook(node Expr) (func(*Env) (stream.Value, error), bool) {
	for env := e; env != nil; env = env.parent {
		if fn, ok := env.hooks[node]; ok {
			return fn, true
		}
	}
	return nil, false
}

// BindTuple makes a stream tuple visible under alias.
func (e *Env) BindTuple(alias string, t *stream.Tuple) {
	e.binds = append(e.binds, binding{alias: strings.ToLower(alias), t: t})
}

// bindTupleLower is BindTuple for an alias already lowercased by the
// planner, skipping the per-call strings.ToLower allocation.
func (e *Env) bindTupleLower(aliasLower string, t *stream.Tuple) {
	e.binds = append(e.binds, binding{alias: aliasLower, t: t})
}

// rebindTupleLower resets the scope to the single binding (aliasLower, t)
// without a pool round-trip — the batch kernels' per-tuple reset. Hooks and
// the function registry are left in place; match context and parent scope
// are not used by the kernels that rebind.
func (e *Env) rebindTupleLower(aliasLower string, t *stream.Tuple) {
	e.binds = e.buf[:0]
	e.binds = append(e.binds, binding{alias: aliasLower, t: t})
}

// BindRow makes a table row visible under alias with the given schema.
func (e *Env) BindRow(alias string, schema *stream.Schema, vals []stream.Value) {
	e.binds = append(e.binds, binding{alias: strings.ToLower(alias), schema: schema, vals: vals})
}

// BindMatch attaches a temporal match: each step alias is bound to its last
// tuple (per the paper, predicates like R2.tagtime reference the bound
// tuple; for star steps the last tuple of the run), and star aggregates
// resolve against the groups.
func (e *Env) BindMatch(m *core.Match, def *core.Def) {
	stepOf := make(map[string]int, len(def.Steps))
	aliases := make([]string, len(def.Steps))
	for i, s := range def.Steps {
		aliases[i] = strings.ToLower(s.Alias)
		stepOf[aliases[i]] = i
	}
	e.BindMatchIndexed(m, def, stepOf, aliases)
}

// BindMatchIndexed is BindMatch with the step index and lowercased aliases
// precomputed at plan time, so repeated per-match binding allocates nothing.
func (e *Env) BindMatchIndexed(m *core.Match, def *core.Def, stepOf map[string]int, lowerAliases []string) {
	e.match = m
	e.stepOf = stepOf
	for i := range def.Steps {
		e.bindTupleLower(lowerAliases[i], m.Last(i))
	}
}

// BindStarTuple rebinds a star alias to one specific tuple of its group
// (the per-item projection of §3.1.2) along with its predecessor.
func (e *Env) BindStarTuple(alias string, t, prev *stream.Tuple) {
	e.bindStarTupleLower(strings.ToLower(alias), t, prev)
}

// bindStarTupleLower is BindStarTuple for a pre-lowercased alias.
func (e *Env) bindStarTupleLower(aliasLower string, t, prev *stream.Tuple) {
	e.bindTupleLower(aliasLower, t)
	if e.prev == nil {
		e.prev = map[string]*stream.Tuple{}
	}
	e.prev[aliasLower] = prev
}

// lookup resolves a possibly-qualified column reference: innermost scope
// first, bindings in declaration order.
func (e *Env) lookup(qualifier, col string) (stream.Value, bool) {
	q := strings.ToLower(qualifier)
	c := strings.ToLower(col)
	for env := e; env != nil; env = env.parent {
		for i := len(env.binds) - 1; i >= 0; i-- {
			b := env.binds[i]
			if q != "" && b.alias != q {
				continue
			}
			if v, ok := b.get(c); ok {
				return v, true
			}
			if q != "" {
				// Qualifier matched but the column does not exist.
				return stream.Null, false
			}
		}
	}
	return stream.Null, false
}

// Eval evaluates an expression to a value, applying SQL three-valued logic
// (NULL propagates; AND/OR follow Kleene semantics).
func (e *Env) Eval(x Expr) (stream.Value, error) {
	switch n := x.(type) {
	case *Literal:
		return n.Val, nil

	case *Interval:
		return stream.Int(n.D.Nanoseconds()), nil

	case *ColRef:
		v, ok := e.lookup(n.Qualifier, n.Name)
		if !ok {
			return stream.Null, fmt.Errorf("esl: unknown column %s", ExprString(n))
		}
		return v, nil

	case *PrevRef:
		t := e.prevTuple(n.Alias)
		if t == nil {
			return stream.Null, nil
		}
		if i, ok := t.Schema.Col(n.Name); ok {
			return t.Get(i), nil
		}
		return stream.Null, fmt.Errorf("esl: unknown column %s", ExprString(n))

	case *StarAgg:
		return e.evalStarAgg(n)

	case *Unary:
		v, err := e.Eval(n.X)
		if err != nil {
			return stream.Null, err
		}
		switch n.Op {
		case "NOT":
			if v.IsNull() {
				return stream.Null, nil
			}
			b, ok := v.AsBool()
			if !ok {
				return stream.Null, fmt.Errorf("esl: NOT applied to non-boolean %s", v)
			}
			return stream.Bool(!b), nil
		case "-":
			switch v.Kind() {
			case stream.KindNull:
				return stream.Null, nil
			case stream.KindInt:
				i, _ := v.AsInt()
				return stream.Int(-i), nil
			case stream.KindFloat:
				f, _ := v.AsFloat()
				return stream.Float(-f), nil
			default:
				return stream.Null, fmt.Errorf("esl: unary minus on %s", v.Kind())
			}
		}
		return stream.Null, fmt.Errorf("esl: unknown unary op %q", n.Op)

	case *Binary:
		return e.evalBinary(n)

	case *Between:
		v, err := e.Eval(n.X)
		if err != nil {
			return stream.Null, err
		}
		lo, err := e.Eval(n.Lo)
		if err != nil {
			return stream.Null, err
		}
		hi, err := e.Eval(n.Hi)
		if err != nil {
			return stream.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return stream.Null, nil
		}
		c1, ok1 := v.Compare(lo)
		c2, ok2 := v.Compare(hi)
		if !ok1 || !ok2 {
			return stream.Null, fmt.Errorf("esl: BETWEEN over incomparable types")
		}
		in := c1 >= 0 && c2 <= 0
		if n.Negate {
			in = !in
		}
		return stream.Bool(in), nil

	case *IsNull:
		v, err := e.Eval(n.X)
		if err != nil {
			return stream.Null, err
		}
		r := v.IsNull()
		if n.Negate {
			r = !r
		}
		return stream.Bool(r), nil

	case *Call:
		if fn, ok := e.hook(n); ok { // aggregate call sites bound by the planner
			return fn(e)
		}
		return e.evalCall(n)

	case *Exists:
		if fn, ok := e.hook(n); ok {
			return fn(e)
		}
		return stream.Null, fmt.Errorf("esl: EXISTS must be planned, not evaluated directly")

	case *SeqExpr:
		if fn, ok := e.hook(n); ok {
			return fn(e)
		}
		return stream.Null, fmt.Errorf("esl: %s must be planned, not evaluated directly", n.Kind)

	default:
		return stream.Null, fmt.Errorf("esl: cannot evaluate %T", x)
	}
}

func (e *Env) prevTuple(alias string) *stream.Tuple {
	a := strings.ToLower(alias)
	for env := e; env != nil; env = env.parent {
		if t, ok := env.prev[a]; ok {
			return t
		}
		if env.match != nil {
			if step, ok := env.stepOf[a]; ok {
				g := env.match.Groups[step]
				if len(g) >= 2 {
					return g[len(g)-2]
				}
				return nil
			}
		}
	}
	return nil
}

func (e *Env) evalStarAgg(n *StarAgg) (stream.Value, error) {
	a := strings.ToLower(n.Alias)
	for env := e; env != nil; env = env.parent {
		if env.match == nil {
			continue
		}
		step, ok := env.stepOf[a]
		if !ok {
			continue
		}
		switch n.Fn {
		case "COUNT":
			return stream.Int(int64(env.match.Count(step))), nil
		case "FIRST", "LAST":
			var t *stream.Tuple
			if n.Fn == "FIRST" {
				t = env.match.First(step)
			} else {
				t = env.match.Last(step)
			}
			if t == nil {
				return stream.Null, nil
			}
			if i, ok := t.Schema.Col(n.Name); ok {
				return t.Get(i), nil
			}
			return stream.Null, fmt.Errorf("esl: unknown column %s", ExprString(n))
		}
	}
	return stream.Null, fmt.Errorf("esl: %s used outside a temporal match", ExprString(n))
}

func (e *Env) evalBinary(n *Binary) (stream.Value, error) {
	// Short-circuit three-valued AND/OR.
	if n.Op == "AND" || n.Op == "OR" {
		l, err := e.Eval(n.L)
		if err != nil {
			return stream.Null, err
		}
		lb, lok := l.AsBool()
		if n.Op == "AND" && lok && !lb {
			return stream.Bool(false), nil
		}
		if n.Op == "OR" && lok && lb {
			return stream.Bool(true), nil
		}
		r, err := e.Eval(n.R)
		if err != nil {
			return stream.Null, err
		}
		rb, rok := r.AsBool()
		switch n.Op {
		case "AND":
			switch {
			case rok && !rb:
				return stream.Bool(false), nil
			case !lok || !rok: // at least one NULL, none false
				return stream.Null, nil
			default:
				return stream.Bool(true), nil
			}
		default: // OR
			switch {
			case rok && rb:
				return stream.Bool(true), nil
			case !lok || !rok:
				return stream.Null, nil
			default:
				return stream.Bool(false), nil
			}
		}
	}

	l, err := e.Eval(n.L)
	if err != nil {
		return stream.Null, err
	}
	r, err := e.Eval(n.R)
	if err != nil {
		return stream.Null, err
	}
	switch n.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return stream.Null, nil
		}
		c, ok := l.Compare(r)
		if !ok {
			return stream.Null, fmt.Errorf("esl: cannot compare %s with %s", l.Kind(), r.Kind())
		}
		var b bool
		switch n.Op {
		case "=":
			b = c == 0
		case "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return stream.Bool(b), nil

	case "LIKE", "NOT LIKE":
		if l.IsNull() || r.IsNull() {
			return stream.Null, nil
		}
		s, ok1 := l.AsString()
		pat, ok2 := r.AsString()
		if !ok1 || !ok2 {
			return stream.Null, fmt.Errorf("esl: LIKE needs string operands")
		}
		m := likeMatch(s, pat)
		if n.Op == "NOT LIKE" {
			m = !m
		}
		return stream.Bool(m), nil

	case "||":
		if l.IsNull() || r.IsNull() {
			return stream.Null, nil
		}
		return stream.Str(valueText(l) + valueText(r)), nil

	case "+", "-", "*", "/", "%":
		return arith(n.Op, l, r)
	}
	return stream.Null, fmt.Errorf("esl: unknown operator %q", n.Op)
}

// valueText renders a value for string concatenation.
func valueText(v stream.Value) string {
	return v.String()
}

// arith applies numeric (and event-time) arithmetic: Time - Time yields a
// duration (INT nanoseconds), Time ± duration yields Time, otherwise the
// usual int/float promotion applies.
func arith(op string, l, r stream.Value) (stream.Value, error) {
	if l.IsNull() || r.IsNull() {
		return stream.Null, nil
	}
	lt, rt := l.Kind() == stream.KindTime, r.Kind() == stream.KindTime
	switch {
	case lt && rt && op == "-":
		a, _ := l.AsInt()
		b, _ := r.AsInt()
		return stream.Int(a - b), nil
	case lt && !rt && (op == "+" || op == "-"):
		a, _ := l.AsInt()
		d, ok := r.AsInt()
		if !ok {
			return stream.Null, fmt.Errorf("esl: time %s %s", op, r.Kind())
		}
		if op == "-" {
			d = -d
		}
		return stream.Time(stream.Timestamp(a + d)), nil
	case !lt && rt && op == "+":
		a, ok := l.AsInt()
		b, _ := r.AsInt()
		if !ok {
			return stream.Null, fmt.Errorf("esl: %s + time", l.Kind())
		}
		return stream.Time(stream.Timestamp(a + b)), nil
	case lt || rt:
		return stream.Null, fmt.Errorf("esl: unsupported time arithmetic %s %s %s", l.Kind(), op, r.Kind())
	}

	if l.Kind() == stream.KindFloat || r.Kind() == stream.KindFloat {
		a, ok1 := l.AsFloat()
		b, ok2 := r.AsFloat()
		if !ok1 || !ok2 {
			return stream.Null, fmt.Errorf("esl: arithmetic on %s and %s", l.Kind(), r.Kind())
		}
		switch op {
		case "+":
			return stream.Float(a + b), nil
		case "-":
			return stream.Float(a - b), nil
		case "*":
			return stream.Float(a * b), nil
		case "/":
			if b == 0 {
				return stream.Null, nil // SQL-ish: division by zero yields NULL
			}
			return stream.Float(a / b), nil
		case "%":
			return stream.Null, fmt.Errorf("esl: %% needs integer operands")
		}
	}
	a, ok1 := l.AsInt()
	b, ok2 := r.AsInt()
	if !ok1 || !ok2 {
		return stream.Null, fmt.Errorf("esl: arithmetic on %s and %s", l.Kind(), r.Kind())
	}
	switch op {
	case "+":
		return stream.Int(a + b), nil
	case "-":
		return stream.Int(a - b), nil
	case "*":
		return stream.Int(a * b), nil
	case "/":
		if b == 0 {
			return stream.Null, nil
		}
		return stream.Int(a / b), nil
	case "%":
		if b == 0 {
			return stream.Null, nil
		}
		return stream.Int(a % b), nil
	}
	return stream.Null, fmt.Errorf("esl: unknown arithmetic op %q", op)
}

// likeMatch implements SQL LIKE: % matches any run, _ one character.
func likeMatch(s, pat string) bool {
	// Iterative two-pointer matcher with backtracking on the last %.
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// EvalBool evaluates a predicate to the SQL boolean triple. Unknown (NULL)
// is reported as (false, false): not satisfied, not known.
func (e *Env) EvalBool(x Expr) (val, known bool, err error) {
	v, err := e.Eval(x)
	if err != nil {
		return false, false, err
	}
	if v.IsNull() {
		return false, false, nil
	}
	b, ok := v.AsBool()
	if !ok {
		return false, false, fmt.Errorf("esl: predicate %s evaluated to non-boolean %s", ExprString(x), v)
	}
	return b, true, nil
}
