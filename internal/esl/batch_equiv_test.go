package esl

// Batch-vs-serial equivalence: every scenario is driven twice — once
// tuple-at-a-time through Push/Heartbeat, once through PushBatch at several
// batch sizes — and each sink's output must match row-for-row, in order.
// This is the oracle for the vectorized execution path: fused kernels,
// batched NFA feeding, coalesced heartbeats and deferred advance must all
// be unobservable per sink.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/stream"
)

// bqEvt is one abstract feed event, instantiated per engine (tuples cannot
// be shared: engines stamp sequence numbers and retain them).
type bqEvt struct {
	hb   bool
	ts   stream.Timestamp
	name string
	vals []stream.Value
}

func bqTup(name string, ts stream.Timestamp, vals ...stream.Value) bqEvt {
	return bqEvt{name: name, ts: ts, vals: vals}
}

func bqBeat(ts stream.Timestamp) bqEvt { return bqEvt{hb: true, ts: ts} }

func bqSec(d int) stream.Timestamp { return stream.TS(time.Duration(d) * time.Second) }
func bqMs(d int) stream.Timestamp  { return stream.TS(time.Duration(d) * time.Millisecond) }

// bqScenario sets up an engine (DDL, queries, subscriptions that record via
// rec) plus the event feed; after runs post-feed checks (snapshots).
type bqScenario struct {
	setup func(t *testing.T, e *Engine, rec func(tag, line string))
	after func(t *testing.T, e *Engine, rec func(tag, line string))
	evts  []bqEvt
	// sensitive asserts the engine's time-sensitivity classification.
	sensitive bool
}

func bqRowLine(r Row) string { return fmt.Sprintf("%v@%d%v", r.Names, r.TS, r.Vals) }

func bqTupLine(t *stream.Tuple) string {
	return fmt.Sprintf("%s@%d%v", t.Schema.Name(), t.TS, t.Vals)
}

func bqRecorder() (map[string][]string, func(tag, line string)) {
	m := map[string][]string{}
	return m, func(tag, line string) { m[tag] = append(m[tag], line) }
}

func bqItems(t *testing.T, e *Engine, evts []bqEvt) []stream.Item {
	t.Helper()
	items := make([]stream.Item, 0, len(evts))
	for _, ev := range evts {
		if ev.hb {
			items = append(items, stream.Heartbeat(ev.ts))
			continue
		}
		schema, ok := e.StreamSchema(ev.name)
		if !ok {
			t.Fatalf("unknown stream %s", ev.name)
		}
		tp, err := stream.NewTuple(schema, ev.ts, ev.vals...)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, stream.Of(tp))
	}
	return items
}

func bqRunSerial(t *testing.T, sc bqScenario) map[string][]string {
	t.Helper()
	e := New()
	want, rec := bqRecorder()
	sc.setup(t, e, rec)
	if e.TimeSensitive() != sc.sensitive {
		t.Fatalf("TimeSensitive = %v, scenario declares %v", e.TimeSensitive(), sc.sensitive)
	}
	for _, ev := range sc.evts {
		var err error
		if ev.hb {
			err = e.Heartbeat(ev.ts)
		} else {
			err = e.Push(ev.name, ev.ts, ev.vals...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if sc.after != nil {
		sc.after(t, e, rec)
	}
	return want
}

// runBatchEquiv drives the scenario serially, then through PushBatch at
// batch sizes 1, 7 and 256, comparing every sink's ordered row sequence.
func runBatchEquiv(t *testing.T, sc bqScenario) {
	t.Helper()
	want := bqRunSerial(t, sc)
	for _, size := range []int{1, 7, 256} {
		t.Run(fmt.Sprintf("batch=%d", size), func(t *testing.T) {
			e := New()
			got, rec := bqRecorder()
			sc.setup(t, e, rec)
			items := bqItems(t, e, sc.evts)
			for i := 0; i < len(items); i += size {
				j := i + size
				if j > len(items) {
					j = len(items)
				}
				if err := e.PushBatch(items[i:j]); err != nil {
					t.Fatal(err)
				}
			}
			if sc.after != nil {
				sc.after(t, e, rec)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("diverged:\nbatch:  %v\nserial: %v", got, want)
			}
		})
	}
}

func bqRegister(t *testing.T, e *Engine, sql, tag string, rec func(tag, line string)) {
	t.Helper()
	if _, err := e.RegisterQuery(tag, sql, func(r Row) { rec(tag, bqRowLine(r)) }); err != nil {
		t.Fatal(err)
	}
}

func bqExec(t *testing.T, e *Engine, script string) {
	t.Helper()
	if _, err := e.Exec(script); err != nil {
		t.Fatal(err)
	}
}

func bqSubscribe(t *testing.T, e *Engine, name, tag string, rec func(tag, line string)) {
	t.Helper()
	if err := e.Subscribe(name, func(tp *stream.Tuple) { rec(tag, bqTupLine(tp)) }); err != nil {
		t.Fatal(err)
	}
}

const bqQCDDL = `
	CREATE STREAM C1(readerid, tagid, tagtime);
	CREATE STREAM C2(readerid, tagid, tagtime);
	CREATE STREAM C3(readerid, tagid, tagtime);
	CREATE STREAM C4(readerid, tagid, tagtime);`

// bqQCFeed builds the Example 6 supply-chain feed: four checkpoint waves
// with a skipped read, a duplicate read, and heartbeats between waves.
func bqQCFeed() []bqEvt {
	var evts []bqEvt
	tags := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	at := 0
	push := func(stn, tag string) {
		at++
		evts = append(evts, bqTup(stn, bqSec(at), stream.Str(stn), stream.Str(tag), stream.Time(bqSec(at))))
	}
	for _, stn := range []string{"C1", "C2", "C3", "C4"} {
		for i, tag := range tags {
			if stn == "C3" && i == 2 {
				continue // t2 skips C3: no match
			}
			push(stn, tag)
			if stn == "C2" && i == 5 {
				push(stn, tag) // duplicate C2 read for t5
			}
		}
		// Heartbeat between waves (coalesced on the batched path).
		at++
		evts = append(evts, bqBeat(bqSec(at)))
	}
	// A second full wave for two tags, out of phase.
	for _, stn := range []string{"C1", "C2", "C3", "C4"} {
		push(stn, "t0")
		push(stn, "t7")
	}
	return evts
}

const bqEx6SQL = `
	SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
	FROM C1, C2, C3, C4
	WHERE SEQ(C1, C2, C3, C4)
	AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
	AND C1.tagid=C4.tagid`

// TestBatchEquivExample6SEQ: the keyed SEQ of Example 6 with a callback
// sink — a silent reader, so runs feed the NFA key-grouped.
func TestBatchEquivExample6SEQ(t *testing.T) {
	runBatchEquiv(t, bqScenario{
		evts: bqQCFeed(),
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, bqQCDDL)
			bqRegister(t, e, bqEx6SQL, "ex6", rec)
		},
	})
}

// TestBatchEquivExample6Derived: the same SEQ writing a derived stream — a
// non-silent reader, which must keep the serial push/emit interleaving
// (derived tuples re-enter the engine mid-run).
func TestBatchEquivExample6Derived(t *testing.T) {
	runBatchEquiv(t, bqScenario{
		evts: bqQCFeed(),
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, bqQCDDL)
			bqExec(t, e, `INSERT INTO completions `+bqEx6SQL)
			bqSubscribe(t, e, "completions", "done", rec)
			// A second query consumes the derived stream, so batch ingestion
			// exercises the derived re-entry path end to end.
			bqRegister(t, e, `SELECT tagid FROM completions`, "echo", rec)
		},
	})
}

// TestBatchEquivModesWalkthrough: the §3.1.1 walkthrough under all four
// pairing modes at once — four silent readers of the same streams, the
// multi-reader vectorization case.
func TestBatchEquivModesWalkthrough(t *testing.T) {
	var evts []bqEvt
	at := 0
	for rep := 0; rep < 3; rep++ {
		for _, stn := range []string{"C1", "C1", "C2", "C3", "C3", "C2", "C4"} {
			for _, tag := range []string{"a", "b", "c"} {
				at++
				evts = append(evts, bqTup(stn, bqSec(at), stream.Str(stn), stream.Str(tag), stream.Time(bqSec(at))))
			}
		}
	}
	runBatchEquiv(t, bqScenario{
		evts: evts,
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, bqQCDDL)
			for _, mode := range []string{"UNRESTRICTED", "RECENT", "CHRONICLE", "CONSECUTIVE"} {
				bqRegister(t, e, fmt.Sprintf(`
					SELECT C1.tagid, C1.tagtime, C4.tagtime
					FROM C1, C2, C3, C4
					WHERE SEQ(C1, C2, C3, C4)
					OVER [30 MINUTES PRECEDING C4] MODE %s
					AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
					AND C1.tagid=C4.tagid`, mode), mode, rec)
			}
		},
	})
}

// TestBatchEquivExample7Containment: the star-sequence containment query
// (Figure 1) with star aggregates and the previous-operator gap bound.
func TestBatchEquivExample7Containment(t *testing.T) {
	var evts []bqEvt
	push := func(stn string, ms int, tag string) {
		evts = append(evts, bqTup(stn, bqMs(ms), stream.Str(stn), stream.Str(tag), stream.Time(bqMs(ms))))
	}
	push("R1", 1000, "p1")
	push("R1", 1800, "p2")
	push("R1", 2500, "p3")
	push("R2", 4000, "case1")
	push("R1", 6000, "p4")
	push("R1", 6500, "p5")
	push("R2", 8000, "case2")
	push("R1", 20000, "p6")
	push("R1", 22500, "p7") // >1s gap: containment chain breaks
	push("R2", 23000, "case3")
	runBatchEquiv(t, bqScenario{
		evts: evts,
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, `
				CREATE STREAM R1(readerid, tagid, tagtime);
				CREATE STREAM R2(readerid, tagid, tagtime);`)
			bqRegister(t, e, `
				SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
				FROM R1, R2
				WHERE SEQ(R1*, R2) MODE CHRONICLE
				AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
				AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`, "fig1", rec)
		},
	})
}

// TestBatchEquivExample1Dedup: the EXISTS-window duplicate filter writing a
// derived stream — stateful filter-project (unfused), single reader under
// two aliases (outer and inner), PRECEDING-only so not time-sensitive.
func TestBatchEquivExample1Dedup(t *testing.T) {
	var evts []bqEvt
	at := 0
	push := func(ms int, rd, tag string) {
		at += ms
		evts = append(evts, bqTup("readings", bqMs(at), stream.Str(rd), stream.Str(tag), stream.Null))
	}
	push(100, "rd1", "x")  // kept
	push(200, "rd1", "x")  // dup within 1s
	push(300, "rd2", "x")  // different reader: kept
	push(600, "rd1", "x")  // still within 1s of first
	push(900, "rd1", "y")  // kept
	push(1500, "rd1", "x") // outside the 1s window again: kept
	push(100, "rd1", "y")  // dup
	runBatchEquiv(t, bqScenario{
		evts: evts,
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, `
				CREATE STREAM readings(reader_id, tag_id, read_time);
				CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
				INSERT INTO cleaned_readings
				SELECT * FROM readings AS r1
				WHERE NOT EXISTS
				  (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
				   WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);`)
			bqSubscribe(t, e, "cleaned_readings", "clean", rec)
		},
	})
}

// TestBatchEquivExample2Table: the stream–table spanning query of Example 2;
// the final table snapshot must also match.
func TestBatchEquivExample2Table(t *testing.T) {
	var evts []bqEvt
	locs := []string{"dock", "floor", "shelf"}
	for i := 0; i < 30; i++ {
		evts = append(evts, bqTup("tag_locations", bqSec(i+1),
			stream.Str("rd"), stream.Str(fmt.Sprintf("obj-%d", i%5)), stream.Null,
			stream.Str(locs[(i/5)%len(locs)])))
	}
	runBatchEquiv(t, bqScenario{
		evts: evts,
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, `
				STREAM tag_locations(readerid, tid, tagtime, loc);
				TABLE object_movement(tagid, location, start_time);
				INSERT INTO object_movement
				SELECT tid, loc, tagtime
				FROM tag_locations WHERE NOT EXISTS
				  (SELECT tagid FROM object_movement
				   WHERE tagid = tid AND location = loc);`)
		},
		after: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			rows, err := e.Query(`SELECT tagid, location, start_time FROM object_movement`)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				rec("table", bqRowLine(r))
			}
		},
	})
}

// TestBatchEquivAggregates: cumulative grouped and windowed aggregation —
// the pooled-environment batch path of aggregateOp, with a heartbeat that
// shrinks the time window between arrivals.
func TestBatchEquivAggregates(t *testing.T) {
	var evts []bqEvt
	at := 0
	for rep := 0; rep < 6; rep++ {
		for _, tag := range []string{"a", "b", "c"} {
			at += 2
			evts = append(evts, bqTup("C1", bqSec(at), stream.Str("rd"), stream.Str(tag), stream.Time(bqSec(at))))
		}
		if rep == 3 {
			at += 20
			evts = append(evts, bqBeat(bqSec(at)))
		}
	}
	runBatchEquiv(t, bqScenario{
		evts: evts,
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, `CREATE STREAM C1(readerid, tagid, tagtime);`)
			bqRegister(t, e, `SELECT tagid, COUNT(*) FROM C1 GROUP BY tagid`, "cum", rec)
			bqRegister(t, e, `SELECT COUNT(*), MIN(tagid), MAX(tagid)
				FROM C1 OVER (RANGE 10 SECONDS PRECEDING CURRENT)`, "win", rec)
		},
	})
}

// TestBatchEquivFusedFilterProject: the stateless filter-projection fused
// kernel, both writing a derived stream (rows re-enter the engine mid-run)
// and feeding a downstream consumer of that derived stream.
func TestBatchEquivFusedFilterProject(t *testing.T) {
	var evts []bqEvt
	for i := 0; i < 40; i++ {
		tag := fmt.Sprintf("a%d", i)
		if i%3 == 0 {
			tag = fmt.Sprintf("b%d", i)
		}
		evts = append(evts, bqTup("readings", bqSec(i+1),
			stream.Str(fmt.Sprintf("rd%d", i%4)), stream.Str(tag), stream.Null))
	}
	runBatchEquiv(t, bqScenario{
		evts: evts,
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, `CREATE STREAM readings(reader_id, tag_id, read_time);`)
			bqExec(t, e, `INSERT INTO hot SELECT tag_id, reader_id FROM readings WHERE tag_id LIKE 'a%'`)
			bqSubscribe(t, e, "hot", "hot", rec)
			bqRegister(t, e, `SELECT tag_id FROM hot WHERE reader_id = 'rd1'`, "down", rec)
		},
	})
}

// TestBatchEquivTimeSensitiveExact: a deferred FOLLOWING window (Example 8)
// marks the engine time-sensitive, so PushBatch must take the exact
// per-item path — heartbeat positions inside the batch are significant.
func TestBatchEquivTimeSensitiveExact(t *testing.T) {
	var evts []bqEvt
	push := func(at time.Duration, tag, typ string) {
		evts = append(evts, bqTup("tag_readings", stream.TS(at), stream.Str(tag), stream.Str(typ), stream.Null))
	}
	push(1*time.Minute, "alice", "person")
	push(90*time.Second, "tv-1", "item") // person 30s before: no theft
	push(10*time.Minute, "tv-2", "item")
	push(630*time.Second, "bob", "person") // person 30s after: no theft
	push(20*time.Minute, "tv-3", "item")   // no person within ±1min: theft
	evts = append(evts, bqBeat(stream.TS(22*time.Minute)))
	push(30*time.Minute, "carol", "person")
	evts = append(evts, bqBeat(stream.TS(40*time.Minute)))
	runBatchEquiv(t, bqScenario{
		evts:      evts,
		sensitive: true,
		setup: func(t *testing.T, e *Engine, rec func(tag, line string)) {
			bqExec(t, e, `CREATE STREAM tag_readings(tagid, tagtype, tagtime);`)
			bqRegister(t, e, `
				SELECT item.tagid
				FROM tag_readings AS item
				WHERE item.tagtype = 'item' AND NOT EXISTS
				  (SELECT * FROM tag_readings AS person
				   OVER [1 MINUTES PRECEDING AND FOLLOWING item]
				   WHERE person.tagtype = 'person')`, "theft", rec)
		},
	})
}
