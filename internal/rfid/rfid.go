// Package rfid simulates RFID deployments: readers with configurable read
// periods, miss rates and duplicate generation, tag populations with EPC
// codes, and the scenario generators behind the paper's application
// workloads — the packing line of Figure 1, the four-stage quality-check
// pipeline of Example 6, the clinic workflow of Example 5, and the door
// security scenario of Example 8.
//
// The simulator substitutes for physical readers and tags: the language
// layer only ever sees (reader_id, tag_id, read_time) tuples, and the
// generators produce exactly those streams, including the duplicate and
// missed reads that the paper's cleaning queries exist to handle. All
// generation is deterministic under a seed.
package rfid

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/epc"
	"repro/internal/stream"
)

// Reading is one raw RFID observation: the paper's primitive event.
type Reading struct {
	Stream   string // destination stream name
	ReaderID string
	TagID    string
	At       stream.Timestamp
}

// Trace is a generated workload: readings across all streams in global
// event-time order, plus the schemas of the streams they belong to.
type Trace struct {
	Readings []Reading
	schemas  map[string]*stream.Schema
}

// ReadingSchema builds the paper's canonical three-column reading schema
// with the given column names (e.g. "reader_id", "tag_id", "read_time" for
// §2.1 or "readerid", "tagid", "tagtime" for §3).
func ReadingSchema(name, readerCol, tagCol, timeCol string) *stream.Schema {
	return stream.MustSchema(name,
		stream.Field{Name: readerCol},
		stream.Field{Name: tagCol},
		stream.Field{Name: timeCol})
}

// NewTrace builds an empty trace.
func NewTrace() *Trace {
	return &Trace{schemas: make(map[string]*stream.Schema)}
}

// DeclareStream registers a destination stream schema (§3-style columns by
// default).
func (tr *Trace) DeclareStream(name string) *stream.Schema {
	if s, ok := tr.schemas[name]; ok {
		return s
	}
	s := ReadingSchema(name, "readerid", "tagid", "tagtime")
	tr.schemas[name] = s
	return s
}

// DeclareStreamAs registers a destination stream with explicit column names.
func (tr *Trace) DeclareStreamAs(name, readerCol, tagCol, timeCol string) *stream.Schema {
	s := ReadingSchema(name, readerCol, tagCol, timeCol)
	tr.schemas[name] = s
	return s
}

// Schemas returns the declared stream schemas.
func (tr *Trace) Schemas() map[string]*stream.Schema { return tr.schemas }

// Add appends one reading (stream must be declared).
func (tr *Trace) Add(r Reading) {
	if _, ok := tr.schemas[r.Stream]; !ok {
		tr.DeclareStream(r.Stream)
	}
	tr.Readings = append(tr.Readings, r)
}

// Sort orders readings by time (stable on insertion order for ties), which
// generators call before handing the trace to the engine.
func (tr *Trace) Sort() {
	sort.SliceStable(tr.Readings, func(i, j int) bool {
		return tr.Readings[i].At < tr.Readings[j].At
	})
}

// Len returns the number of readings.
func (tr *Trace) Len() int { return len(tr.Readings) }

// Tuples materializes the trace as stream tuples in order.
func (tr *Trace) Tuples() []*stream.Tuple {
	out := make([]*stream.Tuple, 0, len(tr.Readings))
	for _, r := range tr.Readings {
		out = append(out, tr.tuple(r))
	}
	return out
}

func (tr *Trace) tuple(r Reading) *stream.Tuple {
	s := tr.schemas[r.Stream]
	return stream.MustTuple(s, r.At,
		stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Time(r.At))
}

// Feed pushes the whole trace into sink(streamName, tuple) in order —
// typically esl.Engine.PushTuple.
func (tr *Trace) Feed(sink func(streamName string, t *stream.Tuple) error) error {
	for _, r := range tr.Readings {
		if err := sink(r.Stream, tr.tuple(r)); err != nil {
			return err
		}
	}
	return nil
}

// Sources splits the trace into per-stream channels for stream.Merger,
// preserving per-stream order.
func (tr *Trace) Sources(buffer int) []stream.Source {
	byStream := map[string][]Reading{}
	var order []string
	for _, r := range tr.Readings {
		if _, ok := byStream[r.Stream]; !ok {
			order = append(order, r.Stream)
		}
		byStream[r.Stream] = append(byStream[r.Stream], r)
	}
	var sources []stream.Source
	for _, name := range order {
		ch := make(chan stream.Item, buffer)
		readings := byStream[name]
		go func(ch chan stream.Item, readings []Reading) {
			for _, r := range readings {
				ch <- stream.Of(tr.tuple(r))
			}
			close(ch)
		}(ch, readings)
		sources = append(sources, stream.Source{Name: name, Ch: ch})
	}
	return sources
}

// TagSet generates EPC tag identities for one product class.
type TagSet struct {
	Company int64
	Product int64
	next    int64
}

// NewTagSet starts serials at firstSerial.
func NewTagSet(company, product, firstSerial int64) *TagSet {
	return &TagSet{Company: company, Product: product, next: firstSerial}
}

// Next mints the next tag's EPC code.
func (ts *TagSet) Next() string {
	code := epc.Format(ts.Company, ts.Product, ts.next)
	ts.next++
	return code
}

// NoiseModel injects the read imperfections RFID middleware must clean:
// duplicate reads (tags answered on several inventory rounds or by
// overlapping readers) and missed reads.
type NoiseModel struct {
	// DupProb is the chance each reading gains an extra duplicate; each
	// duplicate lands within DupSpread after the original.
	DupProb   float64
	DupSpread time.Duration
	// MissProb drops the reading entirely.
	MissProb float64
	// DupReaders, when set, attributes duplicates to a second reader id
	// (reader overlap), not just repeated reads.
	DupReaders bool
}

// Apply returns a noisy copy of the trace, deterministic under seed.
func (n NoiseModel) Apply(tr *Trace, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	out := NewTrace()
	for name, s := range tr.schemas {
		out.schemas[name] = s
	}
	for _, r := range tr.Readings {
		if n.MissProb > 0 && rng.Float64() < n.MissProb {
			continue
		}
		out.Add(r)
		// Geometric duplicate count, capped so a DupProb of 1.0 stays
		// finite (at most 8 extra reads per original).
		for extra := 0; extra < 8 && n.DupProb > 0 && rng.Float64() < n.DupProb; extra++ {
			dup := r
			if n.DupSpread > 0 {
				dup.At = r.At.Add(time.Duration(rng.Int63n(int64(n.DupSpread))))
			}
			if n.DupReaders {
				dup.ReaderID = r.ReaderID + "-b"
			}
			out.Add(dup)
		}
	}
	out.Sort()
	return out
}
