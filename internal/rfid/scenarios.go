package rfid

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/stream"
)

// jitter returns a uniformly random duration in [0, max).
func jitter(rng *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(max)))
}

// PackingConfig drives the Figure 1 / Example 7 packing-line scenario:
// reader r1 scans products being packed, reader r2 scans packing cases.
// Products of one case arrive with inter-arrival gaps below IntraGap; the
// case reading follows the last product within CaseDelay; consecutive
// cases' product groups may overlap in time per the paper's Figure 1(b),
// separated by gaps above IntraGap.
type PackingConfig struct {
	Cases          int
	ItemsPerCase   int // mean; actual in [1, 2*mean)
	IntraGap       time.Duration
	CaseDelay      time.Duration
	InterCaseGap   time.Duration
	ProductStream  string
	CaseStream     string
	Seed           int64
	LateCaseEvery  int // every Nth case reading violates CaseDelay (0 = never)
	MissedCaseRate float64
}

func (c *PackingConfig) defaults() {
	if c.Cases == 0 {
		c.Cases = 10
	}
	if c.ItemsPerCase == 0 {
		c.ItemsPerCase = 4
	}
	if c.IntraGap == 0 {
		c.IntraGap = time.Second
	}
	if c.CaseDelay == 0 {
		c.CaseDelay = 5 * time.Second
	}
	if c.InterCaseGap == 0 {
		c.InterCaseGap = 10 * time.Second
	}
	if c.ProductStream == "" {
		c.ProductStream = "R1"
	}
	if c.CaseStream == "" {
		c.CaseStream = "R2"
	}
}

// PackingCase records ground truth for one generated case.
type PackingCase struct {
	CaseTag  string
	Items    []string
	CaseAt   stream.Timestamp
	LateCase bool
	Missed   bool
}

// PackingLine generates the packing workload with ground truth.
func PackingLine(cfg PackingConfig) (*Trace, []PackingCase) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := NewTrace()
	tr.DeclareStream(cfg.ProductStream)
	tr.DeclareStream(cfg.CaseStream)
	products := NewTagSet(20, 100, 5000)
	var truth []PackingCase

	at := stream.TS(time.Second)
	for c := 0; c < cfg.Cases; c++ {
		nItems := 1 + rng.Intn(2*cfg.ItemsPerCase-1)
		pc := PackingCase{CaseTag: fmt.Sprintf("case-%04d", c)}
		for i := 0; i < nItems; i++ {
			tag := products.Next()
			pc.Items = append(pc.Items, tag)
			tr.Add(Reading{Stream: cfg.ProductStream, ReaderID: "r1", TagID: tag, At: at})
			if i < nItems-1 {
				// Stay strictly inside the intra-gap threshold.
				at = at.Add(cfg.IntraGap/4 + jitter(rng, cfg.IntraGap/2))
			}
		}
		delay := cfg.CaseDelay / 4
		pc.LateCase = cfg.LateCaseEvery > 0 && (c+1)%cfg.LateCaseEvery == 0
		if pc.LateCase {
			delay = cfg.CaseDelay*2 + time.Second
		}
		pc.CaseAt = at.Add(delay + jitter(rng, cfg.CaseDelay/4))
		pc.Missed = cfg.MissedCaseRate > 0 && rng.Float64() < cfg.MissedCaseRate
		if !pc.Missed {
			tr.Add(Reading{Stream: cfg.CaseStream, ReaderID: "r2", TagID: pc.CaseTag, At: pc.CaseAt})
		}
		truth = append(truth, pc)
		// Next case's products start after a gap above IntraGap; per
		// Figure 1(b) they may start before this case's reading.
		at = at.Add(cfg.IntraGap + cfg.InterCaseGap/2 + jitter(rng, cfg.InterCaseGap/2))
		// A late case reading must not land within CaseDelay of the NEXT
		// case's product run, or it would legally pair with that run (the
		// query has no case-to-run identity); keep the staged truth
		// unambiguous by pushing the next run past it.
		if pc.LateCase && !pc.Missed {
			if next := pc.CaseAt.Add(cfg.CaseDelay + time.Second); next > at {
				at = next
			}
		}
	}
	tr.Sort()
	return tr, truth
}

// QualityConfig drives the Example 6 scenario: items traverse checkpoints
// C1..C4 with per-stage transit delays; some drop out mid-pipeline.
type QualityConfig struct {
	Items        int
	Stages       []string // default C1..C4
	ArrivalEvery time.Duration
	Transit      time.Duration
	DropRate     float64 // chance an item vanishes before each later stage
	Seed         int64
}

func (c *QualityConfig) defaults() {
	if c.Items == 0 {
		c.Items = 20
	}
	if len(c.Stages) == 0 {
		c.Stages = []string{"C1", "C2", "C3", "C4"}
	}
	if c.ArrivalEvery == 0 {
		c.ArrivalEvery = 2 * time.Second
	}
	if c.Transit == 0 {
		c.Transit = 3 * time.Second
	}
}

// QualityItem is ground truth for one item.
type QualityItem struct {
	Tag       string
	Completed bool
	Times     []stream.Timestamp // per completed stage
}

// QualityLine generates the pipeline workload; items interleave across
// stages, so the SEQ query must pair readings per tag.
func QualityLine(cfg QualityConfig) (*Trace, []QualityItem) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := NewTrace()
	for _, s := range cfg.Stages {
		tr.DeclareStream(s)
	}
	tags := NewTagSet(20, 200, 1000)
	var truth []QualityItem
	for i := 0; i < cfg.Items; i++ {
		item := QualityItem{Tag: tags.Next(), Completed: true}
		at := stream.TS(time.Duration(i) * cfg.ArrivalEvery).Add(jitter(rng, cfg.ArrivalEvery/2))
		for s, stage := range cfg.Stages {
			if s > 0 && cfg.DropRate > 0 && rng.Float64() < cfg.DropRate {
				item.Completed = false
				break
			}
			tr.Add(Reading{Stream: stage, ReaderID: stage, TagID: item.Tag, At: at})
			item.Times = append(item.Times, at)
			at = at.Add(cfg.Transit/2 + jitter(rng, cfg.Transit))
		}
		truth = append(truth, item)
	}
	tr.Sort()
	return tr, truth
}

// ClinicConfig drives the Example 5 scenario: staff perform operation
// sequences A -> B -> C on instruments, sometimes violating order or
// stalling past the deadline.
type ClinicConfig struct {
	Tests     int
	Staff     []string
	Streams   []string // default A1, A2, A3
	StepDelay time.Duration
	Deadline  time.Duration
	// WrongOrderEvery makes every Nth test swap two operations; StallEvery
	// makes every Nth test stop mid-sequence (timeout).
	WrongOrderEvery int
	StallEvery      int
	Seed            int64
}

func (c *ClinicConfig) defaults() {
	if c.Tests == 0 {
		c.Tests = 10
	}
	if len(c.Staff) == 0 {
		c.Staff = []string{"staff-1"}
	}
	if len(c.Streams) == 0 {
		c.Streams = []string{"A1", "A2", "A3"}
	}
	if c.StepDelay == 0 {
		c.StepDelay = 5 * time.Minute
	}
	if c.Deadline == 0 {
		c.Deadline = time.Hour
	}
}

// ClinicTest is ground truth for one generated test.
type ClinicTest struct {
	Staff      string
	WrongOrder bool
	Stalled    bool
}

// ClinicWorkflow generates the lab-test workload.
func ClinicWorkflow(cfg ClinicConfig) (*Trace, []ClinicTest) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := NewTrace()
	for _, s := range cfg.Streams {
		tr.DeclareStream(s)
	}
	var truth []ClinicTest
	at := stream.TS(time.Minute)
	for i := 0; i < cfg.Tests; i++ {
		test := ClinicTest{Staff: cfg.Staff[i%len(cfg.Staff)]}
		test.WrongOrder = cfg.WrongOrderEvery > 0 && (i+1)%cfg.WrongOrderEvery == 0
		test.Stalled = !test.WrongOrder && cfg.StallEvery > 0 && (i+1)%cfg.StallEvery == 0
		order := []int{0, 1, 2}
		if test.WrongOrder {
			order = []int{0, 2, 1} // C before B
		}
		steps := len(order)
		if test.Stalled {
			steps = 1 + rng.Intn(2) // stop after 1-2 operations
		}
		for s := 0; s < steps; s++ {
			tr.Add(Reading{
				Stream:   cfg.Streams[order[s]],
				ReaderID: "wrist-" + test.Staff,
				TagID:    test.Staff,
				At:       at,
			})
			at = at.Add(cfg.StepDelay/2 + jitter(rng, cfg.StepDelay))
		}
		truth = append(truth, test)
		// Leave room so stalled tests visibly expire before the next one.
		at = at.Add(cfg.Deadline + cfg.StepDelay)
	}
	tr.Sort()
	return tr, truth
}

// DoorConfig drives the Example 8 scenario: items and persons pass a door
// reader; a theft is an item with no person within Tau on either side.
type DoorConfig struct {
	Events     int
	Tau        time.Duration
	TheftEvery int // every Nth item has no accompanying person
	Stream     string
	Seed       int64
}

func (c *DoorConfig) defaults() {
	if c.Events == 0 {
		c.Events = 20
	}
	if c.Tau == 0 {
		c.Tau = time.Minute
	}
	if c.Stream == "" {
		c.Stream = "tag_readings"
	}
}

// DoorEvent is ground truth for one item passage.
type DoorEvent struct {
	ItemTag string
	Theft   bool
}

// DoorTraffic generates the door-security workload on a single stream with
// a tagtype column.
func DoorTraffic(cfg DoorConfig) (*Trace, []DoorEvent) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := NewTrace()
	// Schema with tagtype: (tagid, tagtype, tagtime).
	tr.schemas[cfg.Stream] = stream.MustSchema(cfg.Stream,
		stream.Field{Name: "tagid"},
		stream.Field{Name: "tagtype"},
		stream.Field{Name: "tagtime"})
	items := NewTagSet(20, 300, 1)
	var truth []DoorEvent
	at := stream.TS(time.Minute)
	for i := 0; i < cfg.Events; i++ {
		theft := cfg.TheftEvery > 0 && (i+1)%cfg.TheftEvery == 0
		itemTag := items.Next()
		itemAt := at.Add(jitter(rng, cfg.Tau))
		tr.Readings = append(tr.Readings, Reading{Stream: cfg.Stream, ReaderID: "item", TagID: itemTag, At: itemAt})
		if !theft {
			// Person within tau before or after the item.
			off := time.Duration(rng.Int63n(int64(cfg.Tau))) - cfg.Tau/2
			tr.Readings = append(tr.Readings, Reading{
				Stream: cfg.Stream, ReaderID: "person",
				TagID: fmt.Sprintf("person-%03d", i), At: itemAt.Add(off),
			})
		}
		truth = append(truth, DoorEvent{ItemTag: itemTag, Theft: theft})
		// Separate events by > 2*tau so windows never overlap across them.
		at = at.Add(3*cfg.Tau + jitter(rng, cfg.Tau))
	}
	tr.Sort()
	return tr, truth
}

// DoorTuples converts a DoorTraffic trace into tuples, mapping ReaderID to
// the tagtype column.
func (tr *Trace) DoorTuples(streamName string) []*stream.Tuple {
	s := tr.schemas[streamName]
	var out []*stream.Tuple
	for _, r := range tr.Readings {
		if r.Stream != streamName {
			continue
		}
		out = append(out, stream.MustTuple(s, r.At,
			stream.Str(r.TagID), stream.Str(r.ReaderID), stream.Time(r.At)))
	}
	return out
}

// UniformReadings generates n plain readings on one stream with the given
// tag cardinality and arrival period — the generic high-volume workload for
// throughput benchmarks (dedup, EPC aggregation).
func UniformReadings(streamName string, n, tagCardinality int, period time.Duration, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := NewTrace()
	tr.DeclareStreamAs(streamName, "reader_id", "tag_id", "read_time")
	tags := make([]string, tagCardinality)
	set := NewTagSet(20, 400, 5000)
	for i := range tags {
		tags[i] = set.Next()
	}
	at := stream.TS(0)
	for i := 0; i < n; i++ {
		at = at.Add(period/2 + jitter(rng, period))
		tr.Add(Reading{
			Stream:   streamName,
			ReaderID: fmt.Sprintf("r%d", rng.Intn(4)+1),
			TagID:    tags[rng.Intn(len(tags))],
			At:       at,
		})
	}
	return tr
}
