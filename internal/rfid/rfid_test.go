package rfid

import (
	"testing"
	"time"

	"repro/internal/esl"
	"repro/internal/stream"
)

func TestTraceBasics(t *testing.T) {
	tr := NewTrace()
	tr.DeclareStream("R1")
	tr.Add(Reading{Stream: "R1", ReaderID: "r", TagID: "t2", At: stream.TS(2 * time.Second)})
	tr.Add(Reading{Stream: "R1", ReaderID: "r", TagID: "t1", At: stream.TS(1 * time.Second)})
	tr.Add(Reading{Stream: "R2", ReaderID: "r", TagID: "t3", At: stream.TS(3 * time.Second)}) // auto-declared
	tr.Sort()
	if tr.Len() != 3 || tr.Readings[0].TagID != "t1" {
		t.Fatalf("sort failed: %+v", tr.Readings)
	}
	tuples := tr.Tuples()
	if len(tuples) != 3 || tuples[0].Field("tagid").String() != "t1" {
		t.Fatalf("tuples: %v", tuples)
	}
	if tuples[0].TS != stream.TS(time.Second) {
		t.Fatalf("tuple TS: %v", tuples[0].TS)
	}
}

func TestTagSet(t *testing.T) {
	ts := NewTagSet(20, 100, 5000)
	if a, b := ts.Next(), ts.Next(); a != "20.100.5000" || b != "20.100.5001" {
		t.Fatalf("tags: %s %s", a, b)
	}
}

func TestNoiseModelDeterministic(t *testing.T) {
	base := UniformReadings("readings", 200, 10, time.Second, 1)
	noisy1 := NoiseModel{DupProb: 0.3, DupSpread: 500 * time.Millisecond}.Apply(base, 42)
	noisy2 := NoiseModel{DupProb: 0.3, DupSpread: 500 * time.Millisecond}.Apply(base, 42)
	if noisy1.Len() != noisy2.Len() {
		t.Fatalf("nondeterministic noise: %d vs %d", noisy1.Len(), noisy2.Len())
	}
	if noisy1.Len() <= base.Len() {
		t.Fatalf("duplicates not injected: %d vs %d", noisy1.Len(), base.Len())
	}
	dropped := NoiseModel{MissProb: 0.5}.Apply(base, 7)
	if dropped.Len() >= base.Len() {
		t.Fatalf("misses not applied: %d", dropped.Len())
	}
}

// End-to-end: the packing-line scenario through the Example 7 query finds
// exactly the ground-truth cases.
func TestPackingLineThroughEngine(t *testing.T) {
	tr, truth := PackingLine(PackingConfig{Cases: 25, Seed: 3, LateCaseEvery: 5})
	e := esl.New()
	if _, err := e.Exec(`
		CREATE STREAM R1(readerid, tagid, tagtime);
		CREATE STREAM R2(readerid, tagid, tagtime);
	`); err != nil {
		t.Fatal(err)
	}
	var rows []esl.Row
	_, err := e.RegisterQuery("containment", `
		SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
		FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
		AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`,
		func(r esl.Row) { rows = append(rows, r) })
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Feed(e.PushTuple); err != nil {
		t.Fatal(err)
	}
	// Expected: all cases that were read in time.
	want := map[string]int{}
	for _, c := range truth {
		if !c.LateCase && !c.Missed {
			want[c.CaseTag] = len(c.Items)
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("detected %d cases, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		caseTag := r.Get("tagid").String()
		n, _ := r.Get("count_R1").AsInt()
		if want[caseTag] != int(n) {
			t.Errorf("case %s: counted %d items, want %d", caseTag, n, want[caseTag])
		}
	}
}

// End-to-end: the quality line through Example 6's query detects exactly
// the completed items.
func TestQualityLineThroughEngine(t *testing.T) {
	tr, truth := QualityLine(QualityConfig{Items: 40, DropRate: 0.2, Seed: 9})
	e := esl.New()
	if _, err := e.Exec(`
		CREATE STREAM C1(readerid, tagid, tagtime);
		CREATE STREAM C2(readerid, tagid, tagtime);
		CREATE STREAM C3(readerid, tagid, tagtime);
		CREATE STREAM C4(readerid, tagid, tagtime);
	`); err != nil {
		t.Fatal(err)
	}
	var rows []esl.Row
	_, err := e.RegisterQuery("qc", `
		SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
		FROM C1, C2, C3, C4
		WHERE SEQ(C1, C2, C3, C4)
		AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid`,
		func(r esl.Row) { rows = append(rows, r) })
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Feed(e.PushTuple); err != nil {
		t.Fatal(err)
	}
	completed := map[string]bool{}
	for _, item := range truth {
		if item.Completed {
			completed[item.Tag] = true
		}
	}
	if len(rows) != len(completed) {
		t.Fatalf("detected %d completions, want %d", len(rows), len(completed))
	}
	for _, r := range rows {
		if !completed[r.Get("tagid").String()] {
			t.Errorf("false completion: %v", r)
		}
	}
}

// End-to-end: clinic workflow violations through EXCEPTION_SEQ match the
// generated wrong-order and stalled tests.
func TestClinicWorkflowThroughEngine(t *testing.T) {
	tr, truth := ClinicWorkflow(ClinicConfig{Tests: 12, WrongOrderEvery: 4, StallEvery: 3, Seed: 5})
	e := esl.New()
	if _, err := e.Exec(`
		CREATE STREAM A1(readerid, tagid, tagtime);
		CREATE STREAM A2(readerid, tagid, tagtime);
		CREATE STREAM A3(readerid, tagid, tagtime);
	`); err != nil {
		t.Fatal(err)
	}
	var alerts []esl.Row
	_, err := e.RegisterQuery("clinic", `
		SELECT exception.level, exception.reason, A1.tagid
		FROM A1, A2, A3
		WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]`,
		func(r esl.Row) { alerts = append(alerts, r) })
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Feed(e.PushTuple); err != nil {
		t.Fatal(err)
	}
	// Drain trailing expirations.
	if err := e.Heartbeat(e.Now().Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, c := range truth {
		if c.WrongOrder || c.Stalled {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("scenario generated no violations")
	}
	if len(alerts) < bad {
		t.Fatalf("alerts = %d, want >= %d (one per bad test at minimum)", len(alerts), bad)
	}
	// Clean tests must not alert: count distinct violation instants is at
	// least the bad count but no alert may carry reason names outside the
	// three classes.
	for _, a := range alerts {
		switch a.Get("reason").String() {
		case "WRONG_TUPLE", "BAD_START", "WINDOW_EXPIRED":
		default:
			t.Errorf("unknown reason: %v", a)
		}
	}
}

// End-to-end: door traffic through the theft query finds exactly the
// generated thefts.
func TestDoorTrafficThroughEngine(t *testing.T) {
	tr, truth := DoorTraffic(DoorConfig{Events: 30, TheftEvery: 6, Seed: 11})
	e := esl.New()
	if _, err := e.Exec(`CREATE STREAM tag_readings(tagid, tagtype, tagtime);`); err != nil {
		t.Fatal(err)
	}
	var alerts []esl.Row
	_, err := e.RegisterQuery("theft", `
		SELECT item.tagid
		FROM tag_readings AS item
		WHERE item.tagtype = 'item' AND NOT EXISTS
		  (SELECT * FROM tag_readings AS person
		   OVER [1 MINUTES PRECEDING AND FOLLOWING item]
		   WHERE person.tagtype = 'person')`,
		func(r esl.Row) { alerts = append(alerts, r) })
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tr.DoorTuples("tag_readings") {
		if err := e.PushTuple("tag_readings", tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Heartbeat(e.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, ev := range truth {
		if ev.Theft {
			want[ev.ItemTag] = true
		}
	}
	if len(alerts) != len(want) {
		t.Fatalf("alerts = %d, want %d", len(alerts), len(want))
	}
	for _, a := range alerts {
		if !want[a.Get("tagid").String()] {
			t.Errorf("false theft: %v", a)
		}
	}
}

// Dedup over noisy uniform readings: the cleaned stream carries no
// duplicates within the threshold.
func TestDedupOverNoisyTrace(t *testing.T) {
	base := UniformReadings("readings", 500, 20, 2*time.Second, 21)
	noisy := NoiseModel{DupProb: 0.4, DupSpread: 800 * time.Millisecond}.Apply(base, 22)
	e := esl.New()
	if _, err := e.Exec(`
		CREATE STREAM readings(reader_id, tag_id, read_time);
		CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
		INSERT INTO cleaned_readings
		SELECT * FROM readings AS r1
		WHERE NOT EXISTS
		  (SELECT * FROM TABLE( readings OVER
		      (RANGE 1 seconds PRECEDING CURRENT)) AS r2
		   WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
	`); err != nil {
		t.Fatal(err)
	}
	var out []*stream.Tuple
	e.Subscribe("cleaned_readings", func(tu *stream.Tuple) { out = append(out, tu) })
	if err := noisy.Feed(e.PushTuple); err != nil {
		t.Fatal(err)
	}
	if len(out) >= noisy.Len() || len(out) == 0 {
		t.Fatalf("dedup ineffective: %d in, %d out", noisy.Len(), len(out))
	}
	// Invariant: no two identical (reader, tag) readings within 1s remain.
	last := map[string]stream.Timestamp{}
	for _, tu := range out {
		key := tu.Field("reader_id").String() + "|" + tu.Field("tag_id").String()
		if prev, ok := last[key]; ok && tu.TS.Sub(prev) < time.Second {
			t.Fatalf("duplicate survived: %v (prev at %v)", tu, prev)
		}
		last[key] = tu.TS
	}
}

func TestSourcesMergeDeterministic(t *testing.T) {
	tr, _ := QualityLine(QualityConfig{Items: 15, Seed: 2})
	run := func() []string {
		m := stream.NewMerger(tr.Sources(16)...)
		var tags []string
		if err := m.Run(func(name string, it stream.Item) error {
			tags = append(tags, it.Tuple.Field("tagid").String())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return tags
	}
	a, b := run(), run()
	if len(a) != tr.Len() {
		t.Fatalf("merged %d, want %d", len(a), tr.Len())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic merge at %d", i)
		}
	}
}
