package core

import (
	"testing"
	"time"

	"repro/internal/stream"
)

// starDef builds SEQ(R1*, R2) in the given mode with the paper's Example 7
// constraints: inter-arrival gap <= 1s within the star, and R2 within 5s of
// the last R1.
func containmentDef(mode Mode) Def {
	return Def{
		Steps: []Step{
			{Alias: "R1", Star: true, MaxGap: time.Second},
			{Alias: "R2"},
		},
		Mode: mode,
		Pred: func(partial *Match, step int, t *stream.Tuple) bool {
			if step != 1 {
				return true
			}
			last := partial.Last(0)
			return last != nil && t.TS.Sub(last.TS) <= 5*time.Second
		},
	}
}

// Figure 1(a): products read by r1, then the case read by r2 within t0.
func TestContainmentBasic(t *testing.T) {
	m := MustMatcher(containmentDef(ModeChronicle))
	got := feed(t, m,
		mk("R1", 1000*time.Millisecond, "p1"),
		mk("R1", 1500*time.Millisecond, "p2"),
		mk("R1", 2000*time.Millisecond, "p3"),
		mk("R2", 4*time.Second, "case1"),
	)
	if len(got) != 1 {
		t.Fatalf("matches = %v", sigs(got))
	}
	ev := got[0]
	// FIRST / LAST / COUNT star aggregates (Example 7's SELECT list).
	if ev.Count(0) != 3 {
		t.Errorf("COUNT(R1*) = %d", ev.Count(0))
	}
	if ev.First(0).TS != stream.TS(time.Second) {
		t.Errorf("FIRST(R1*).tagtime = %v", ev.First(0).TS)
	}
	if ev.Last(0).TS != stream.TS(2*time.Second) {
		t.Errorf("LAST(R1*).tagtime = %v", ev.Last(0).TS)
	}
	if ev.Last(1).Field("tagid").String() != "case1" {
		t.Errorf("R2.tagid = %v", ev.Last(1).Field("tagid"))
	}
}

// Figure 1(b): the next case's products start before the previous case is
// read; the >t1 gap separates the groups.
func TestContainmentGapSplitsCases(t *testing.T) {
	m := MustMatcher(containmentDef(ModeChronicle))
	got := feed(t, m,
		// Case 1 products at 1.0, 1.5.
		mk("R1", 1000*time.Millisecond, "p1"),
		mk("R1", 1500*time.Millisecond, "p2"),
		// Gap > 1s: case 2 products at 3.0, 3.5.
		mk("R1", 3000*time.Millisecond, "p3"),
		mk("R1", 3500*time.Millisecond, "p4"),
		// Case 1 detected at 4.0 (within 5s of p2), then case 2 at 5.0.
		mk("R2", 4*time.Second, "case1"),
		mk("R2", 5*time.Second, "case2"),
	)
	if len(got) != 2 {
		t.Fatalf("matches = %v", sigs(got))
	}
	if got[0].Count(0) != 2 || got[0].Last(1).Field("tagid").String() != "case1" {
		t.Errorf("case1 grouped wrong: %s (count %d)", sig(got[0]), got[0].Count(0))
	}
	if got[1].Count(0) != 2 || got[1].Last(1).Field("tagid").String() != "case2" {
		t.Errorf("case2 grouped wrong: %s (count %d)", sig(got[1]), got[1].Count(0))
	}
	// CHRONICLE pairs the earliest pending group with the first case.
	if got[0].First(0).Field("tagid").String() != "p1" {
		t.Errorf("case1 should take the earliest product run")
	}
}

// Longest-match semantics: no events for sub-runs of the star.
func TestStarLongestMatchOnly(t *testing.T) {
	for _, mode := range []Mode{ModeUnrestricted, ModeRecent, ModeChronicle, ModeConsecutive} {
		def := Def{Steps: []Step{{Alias: "R1", Star: true}, {Alias: "R2"}}, Mode: mode}
		m := MustMatcher(def)
		got := feed(t, m,
			mk("R1", 1*time.Second, "a"),
			mk("R1", 2*time.Second, "b"),
			mk("R1", 3*time.Second, "c"),
			mk("R2", 4*time.Second, "case"),
		)
		if len(got) != 1 {
			t.Fatalf("mode %v: got %d events %v, want exactly the longest", mode, len(got), sigs(got))
		}
		if got[0].Count(0) != 3 {
			t.Errorf("mode %v: star bound %d tuples, want 3", mode, got[0].Count(0))
		}
	}
}

// §3.1.2: "in SEQ(E1*, E2*), if there are three E2 tuples coming in after
// the E1 tuples, we generate one event for each E2 tuple."
func TestTrailingStarEmitsOnline(t *testing.T) {
	def := Def{Steps: []Step{{Alias: "R1", Star: true}, {Alias: "R2", Star: true}}, Mode: ModeConsecutive}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("R1", 1*time.Second, "a"),
		mk("R1", 2*time.Second, "b"),
		mk("R2", 3*time.Second, "x"),
		mk("R2", 4*time.Second, "y"),
		mk("R2", 5*time.Second, "z"),
	)
	if len(got) != 3 {
		t.Fatalf("got %d events, want one per E2 tuple: %v", len(got), sigs(got))
	}
	for i, want := range []int{1, 2, 3} {
		if got[i].Count(1) != want {
			t.Errorf("event %d has %d E2 tuples, want %d", i, got[i].Count(1), want)
		}
		if got[i].Count(0) != 2 {
			t.Errorf("event %d lost the E1 run", i)
		}
	}
}

// SEQ(A*, B, C*, D): mixed stars and singletons.
func TestMixedStarPattern(t *testing.T) {
	def := Def{Steps: []Step{
		{Alias: "A1", Star: true},
		{Alias: "A2"},
		{Alias: "A3", Star: true},
		{Alias: "C4"},
	}, Mode: ModeConsecutive}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("A1", 1*time.Second, "a"),
		mk("A1", 2*time.Second, "a"),
		mk("A2", 3*time.Second, "b"),
		mk("A3", 4*time.Second, "c"),
		mk("A3", 5*time.Second, "c"),
		mk("A3", 6*time.Second, "c"),
		mk("C4", 7*time.Second, "d"),
	)
	if len(got) != 1 {
		t.Fatalf("matches = %v", sigs(got))
	}
	ev := got[0]
	if ev.Count(0) != 2 || ev.Count(1) != 1 || ev.Count(2) != 3 || ev.Count(3) != 1 {
		t.Fatalf("group sizes = %d,%d,%d,%d", ev.Count(0), ev.Count(1), ev.Count(2), ev.Count(3))
	}
}

// Consecutive mode: an interleaved foreign tuple breaks the star run.
func TestConsecutiveStarBrokenByInterleaving(t *testing.T) {
	def := Def{Steps: []Step{{Alias: "R1", Star: true}, {Alias: "R2"}}, Mode: ModeConsecutive}
	m := MustMatcher(def)
	// R2 arrives mid-run then again: first R2 closes a 1-tuple run; the
	// second R2 cannot start (needs R1 first).
	got := feed(t, m,
		mk("R1", 1*time.Second, "a"),
		mk("R2", 2*time.Second, "case"),
		mk("R2", 3*time.Second, "case2"),
	)
	if len(got) != 1 || got[0].Count(0) != 1 {
		t.Fatalf("got %v", sigs(got))
	}
}

// RECENT star: the most recent pending run wins.
func TestRecentStarTakesLatestRun(t *testing.T) {
	def := Def{Steps: []Step{{Alias: "R1", Star: true, MaxGap: time.Second}, {Alias: "R2"}}, Mode: ModeRecent}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("R1", 1*time.Second, "old"),
		// gap > 1s: new run replaces the old one at its level
		mk("R1", 5*time.Second, "new"),
		mk("R2", 6*time.Second, "case"),
	)
	if len(got) != 1 {
		t.Fatalf("matches = %v", sigs(got))
	}
	if got[0].First(0).Field("tagid").String() != "new" {
		t.Errorf("RECENT should bind the most recent run, got %s", sig(got[0]))
	}
}

// UNRESTRICTED with a non-star first step and star second step forks per
// first-step choice.
func TestUnrestrictedForksOverNonStarChoices(t *testing.T) {
	def := Def{Steps: []Step{{Alias: "C1"}, {Alias: "R1", Star: true}, {Alias: "C4"}}, Mode: ModeUnrestricted}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("C1", 1*time.Second, "a"),
		mk("C1", 2*time.Second, "b"),
		mk("R1", 3*time.Second, "x"),
		mk("R1", 4*time.Second, "y"),
		mk("C4", 5*time.Second, "z"),
	)
	// Two C1 choices, each with the (longest) star run (x,y).
	if len(got) != 2 {
		t.Fatalf("got %d matches %v", len(got), sigs(got))
	}
	for _, ev := range got {
		if ev.Count(1) != 2 {
			t.Errorf("star not longest: %s", sig(ev))
		}
	}
}

// Chronicle consumes the matched run; the next case needs fresh products.
func TestChronicleStarConsumes(t *testing.T) {
	m := MustMatcher(containmentDef(ModeChronicle))
	got := feed(t, m,
		mk("R1", 1*time.Second, "p1"),
		mk("R2", 2*time.Second, "case1"),
		mk("R2", 3*time.Second, "case2"), // nothing left to pair
	)
	if len(got) != 1 {
		t.Fatalf("matches = %v", sigs(got))
	}
	if m.StateSize() != 0 {
		t.Errorf("state after consume = %d", m.StateSize())
	}
}

// Def.ExpireAfter prunes stale pending runs (the state-bound for
// containment workloads whose timing bound lives in Pred).
func TestExpireAfterPrunesIdleRuns(t *testing.T) {
	def := containmentDef(ModeChronicle)
	def.ExpireAfter = 6 * time.Second
	m := MustMatcher(def)
	feed(t, m, mk("R1", 1*time.Second, "p1"))
	if m.StateSize() != 1 {
		t.Fatalf("state = %d", m.StateSize())
	}
	m.Advance(stream.TS(3 * time.Second))
	if m.StateSize() != 1 {
		t.Fatalf("pruned too early")
	}
	m.Advance(stream.TS(8 * time.Second))
	if m.StateSize() != 0 {
		t.Fatalf("idle run not pruned: %d", m.StateSize())
	}
}

// Star with window: PRECEDING window anchored at the final step evicts
// pending runs whose products fell out of range.
func TestStarWindowEviction(t *testing.T) {
	def := Def{
		Steps:  []Step{{Alias: "R1", Star: true}, {Alias: "R2"}},
		Mode:   ModeChronicle,
		Window: &WindowAnchor{Span: 5 * time.Second, Step: 1},
	}
	m := MustMatcher(def)
	feed(t, m, mk("R1", 1*time.Second, "p1"))
	m.Advance(stream.TS(100 * time.Second))
	if m.StateSize() != 0 {
		t.Fatalf("expired run not evicted: %d", m.StateSize())
	}
	// And a too-late R2 does not match a fresh run either.
	got := feed(t, m,
		mk("R1", 200*time.Second, "p2"),
		mk("R2", 210*time.Second, "case"),
	)
	if len(got) != 0 {
		t.Fatalf("window should reject: %v", sigs(got))
	}
}

// Partitioned star pattern: per-tag containment.
func TestPartitionedStar(t *testing.T) {
	def := Def{
		Steps: []Step{
			{Alias: "R1", Star: true, Key: func(tu *stream.Tuple) stream.Value { return tu.Field("tagid") }},
			{Alias: "R2", Key: func(tu *stream.Tuple) stream.Value { return tu.Field("tagid") }},
		},
		Mode: ModeChronicle,
	}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("R1", 1*time.Second, "a"),
		mk("R1", 2*time.Second, "b"),
		mk("R1", 3*time.Second, "a"),
		mk("R2", 4*time.Second, "a"),
	)
	if len(got) != 1 || got[0].Count(0) != 2 {
		t.Fatalf("per-key grouping wrong: %v", sigs(got))
	}
}
