package core

import (
	"testing"
	"time"

	"repro/internal/stream"
)

// PRECEDING window anchored mid-sequence: steps before the anchor must fall
// within the span before it; steps after are unconstrained.
func TestPrecedingWindowMidAnchor(t *testing.T) {
	def := seqDef(ModeRecent, "C1", "C2", "C3")
	def.Window = &WindowAnchor{Span: 5 * time.Second, Step: 1} // PRECEDING C2
	m := MustMatcher(def)
	// C1 far before C2: rejected when C2 binds.
	got := feed(t, m,
		mk("C1", 1*time.Second, "x"),
		mk("C2", 60*time.Second, "x"),
		mk("C3", 61*time.Second, "x"),
	)
	wantSigs(t, got)
	// C1 within 5s of C2; C3 arbitrarily later: accepted.
	got = feed(t, m,
		mk("C1", 100*time.Second, "x"),
		mk("C2", 103*time.Second, "x"),
		mk("C3", 500*time.Second, "x"),
	)
	wantSigs(t, got, "t100,t103,t500")
}

// FOLLOWING window: pending runs die once the span after the bound anchor
// elapses, via Advance.
func TestFollowingWindowPendingEviction(t *testing.T) {
	def := Def{
		Steps:  []Step{{Alias: "R1", Star: true}, {Alias: "R2"}},
		Mode:   ModeChronicle,
		Window: &WindowAnchor{Span: 5 * time.Second, Step: 0, Following: true},
	}
	m := MustMatcher(def)
	feed(t, m, mk("R1", 1*time.Second, "p"))
	if m.StateSize() != 1 {
		t.Fatalf("state = %d", m.StateSize())
	}
	m.Advance(stream.TS(3 * time.Second))
	if m.StateSize() != 1 {
		t.Fatal("evicted too early")
	}
	m.Advance(stream.TS(10 * time.Second))
	if m.StateSize() != 0 {
		t.Fatalf("pending run survived its FOLLOWING window: %d", m.StateSize())
	}
}

// UNRESTRICTED without a window retains full history — the behaviour the
// paper tells you to bound with windows.
func TestUnrestrictedUnboundedWithoutWindow(t *testing.T) {
	m := MustMatcher(seqDef(ModeUnrestricted, "C1", "C2"))
	for i := 0; i < 500; i++ {
		feed(t, m, mk("C1", time.Duration(i)*time.Second, "x"))
	}
	if m.StateSize() != 500 {
		t.Fatalf("state = %d, want full history", m.StateSize())
	}
	m.Advance(stream.TS(time.Hour)) // no window: advance cannot purge
	if m.StateSize() != 500 {
		t.Fatalf("state = %d after advance", m.StateSize())
	}
}

// Tuples arriving exactly on the window boundary are admitted (inclusive
// bounds, as the paper's "within time t0" reads).
func TestWindowBoundaryInclusive(t *testing.T) {
	def := seqDef(ModeRecent, "C1", "C2")
	def.Window = &WindowAnchor{Span: 5 * time.Second, Step: 1}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("C1", 10*time.Second, "x"),
		mk("C2", 15*time.Second, "x"), // exactly 5s later
	)
	wantSigs(t, got, "t10,t15")
	def2 := seqDef(ModeRecent, "C1", "C2")
	def2.Window = &WindowAnchor{Span: 5 * time.Second, Step: 0, Following: true}
	m2 := MustMatcher(def2)
	got = feed(t, m2,
		mk("C1", 20*time.Second, "x"),
		mk("C2", 25*time.Second, "x"),
	)
	wantSigs(t, got, "t20,t25")
}

// Same-timestamp tuples: order is decided by arrival sequence, so a C2
// arriving at the same instant but after a C1 still forms a sequence.
func TestSameInstantOrdering(t *testing.T) {
	m := MustMatcher(seqDef(ModeRecent, "C1", "C2"))
	a := mk("C1", time.Second, "x")
	b := mk("C2", time.Second, "x") // same ts, later Seq (mk increments)
	got := feed(t, m, a, b)
	wantSigs(t, got, "t1,t1")
	// Reversed arrival: C2 first cannot pair with a later-arriving C1.
	m2 := MustMatcher(seqDef(ModeRecent, "C1", "C2"))
	c := mk("C2", 2*time.Second, "x")
	d := mk("C1", 2*time.Second, "x")
	got = feed(t, m2, c, d)
	wantSigs(t, got)
}

// A star run may span the entire match under CONSECUTIVE with windows:
// window checked per absorbed tuple.
func TestConsecutiveStarWindow(t *testing.T) {
	def := Def{
		Steps:  []Step{{Alias: "R1", Star: true}, {Alias: "R2"}},
		Mode:   ModeConsecutive,
		Window: &WindowAnchor{Span: 3 * time.Second, Step: 1},
	}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("R1", 1*time.Second, "a"),
		mk("R1", 2*time.Second, "b"),
		mk("R1", 3*time.Second, "c"),
		mk("R2", 5*time.Second, "case"), // window [2s,5s]: t1 falls outside
	)
	// The anchor check rejects the run containing t1 — the run breaks and
	// nothing matches (consecutive semantics have no partial salvage).
	wantSigs(t, got)
	got = feed(t, m,
		mk("R1", 10*time.Second, "d"),
		mk("R1", 11*time.Second, "e"),
		mk("R2", 12*time.Second, "case2"),
	)
	if len(got) != 1 || got[0].Count(0) != 2 {
		t.Fatalf("got %v", sigs(got))
	}
}

// Exceptions carry deep-copied partials: later matcher state changes must
// not mutate reported exceptions.
func TestExceptionPartialIsolation(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	pushEx(t, m, mk("A1", 1*time.Minute, "s"))
	_, exs := pushEx(t, m, mk("A3", 2*time.Minute, "s"))
	if len(exs) == 0 || exs[0].Partial == nil {
		t.Fatal("missing partial")
	}
	snapshot := exs[0].Partial.First(0)
	// Drive more activity.
	pushEx(t, m, mk("A1", 10*time.Minute, "s"))
	pushEx(t, m, mk("A2", 11*time.Minute, "s"))
	if exs[0].Partial.First(0) != snapshot {
		t.Fatal("partial mutated by later activity")
	}
}
