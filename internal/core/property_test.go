package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stream"
)

// randomHistory builds a random joint history over the streams, with
// strictly increasing timestamps, and returns it with per-stream counts.
func randomHistory(rng *rand.Rand, streams []string, n int) ([]*stream.Tuple, map[string]int) {
	counts := make(map[string]int)
	var hist []*stream.Tuple
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += time.Duration(1+rng.Intn(900)) * time.Millisecond
		s := streams[rng.Intn(len(streams))]
		counts[s]++
		hist = append(hist, mk(s, at, "x"))
	}
	return hist, counts
}

// Property: UNRESTRICTED match count for SEQ(S1,...,Sk) when all S1 tuples
// precede all S2 tuples etc. equals the product of per-step counts.
func TestUnrestrictedProductProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		na, nb, nc := int(a%5)+1, int(b%5)+1, int(c%5)+1
		m := MustMatcher(seqDef(ModeUnrestricted, "C1", "C2", "C3"))
		at := time.Duration(0)
		emit := func(name string, k int) int {
			total := 0
			for i := 0; i < k; i++ {
				at += time.Second
				got, _ := m.Push(mk(name, at, "x"), name)
				total += len(got)
			}
			return total
		}
		emit("C1", na)
		emit("C2", nb)
		return emit("C3", nc) == na*nb*nc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RECENT and CHRONICLE emit at most one event per terminal-stream
// tuple, on any random history.
func TestSingleEmissionProperty(t *testing.T) {
	for _, mode := range []Mode{ModeRecent, ModeChronicle} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			m := MustMatcher(seqDef(mode, "C1", "C2", "C3"))
			hist, _ := randomHistory(rng, []string{"C1", "C2", "C3"}, 60)
			for _, tu := range hist {
				got, _ := m.Push(tu, tu.Schema.Name())
				if len(got) > 1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

// Property: CHRONICLE never reuses a tuple across matches.
func TestChronicleDisjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustMatcher(seqDef(ModeChronicle, "C1", "C2", "C3"))
		hist, _ := randomHistory(rng, []string{"C1", "C2", "C3"}, 80)
		used := make(map[*stream.Tuple]bool)
		for _, tu := range hist {
			got, _ := m.Push(tu, tu.Schema.Name())
			for _, ev := range got {
				for _, g := range ev.Groups {
					for _, x := range g {
						if used[x] {
							return false
						}
						used[x] = true
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every CHRONICLE/RECENT/UNRESTRICTED match is time-ordered
// (strictly ascending across groups).
func TestMatchOrderProperty(t *testing.T) {
	for _, mode := range []Mode{ModeUnrestricted, ModeRecent, ModeChronicle} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			m := MustMatcher(seqDef(mode, "C1", "C2", "C3"))
			hist, _ := randomHistory(rng, []string{"C1", "C2", "C3"}, 50)
			for _, tu := range hist {
				got, _ := m.Push(tu, tu.Schema.Name())
				for _, ev := range got {
					var prev *stream.Tuple
					for _, g := range ev.Groups {
						for _, x := range g {
							if prev != nil && !prev.BeforeInOrder(x) {
								return false
							}
							prev = x
						}
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

// Property: CONSECUTIVE matches are contiguous on the joint history (global
// Seq numbers are dense within a match).
func TestConsecutiveContiguityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustMatcher(seqDef(ModeConsecutive, "C1", "C2", "C3"))
		hist, _ := randomHistory(rng, []string{"C1", "C2", "C3"}, 80)
		for _, tu := range hist {
			got, _ := m.Push(tu, tu.Schema.Name())
			for _, ev := range got {
				var prev *stream.Tuple
				for _, g := range ev.Groups {
					for _, x := range g {
						if prev != nil && x.Seq != prev.Seq+1 {
							return false
						}
						prev = x
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RECENT state is bounded by the square of the pattern length
// regardless of history length (one chain per prefix, each chain one tuple
// per step) — the paper's "aggressive purge" claim.
func TestRecentStateBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustMatcher(seqDef(ModeRecent, "C1", "C2", "C3", "C4"))
		hist, _ := randomHistory(rng, []string{"C1", "C2", "C3", "C4"}, 200)
		for _, tu := range hist {
			m.Push(tu, tu.Schema.Name())
			if m.StateSize() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: every mode's matches also satisfy the plain SEQ definition —
// each match is a subset of the pushed history in correct stream order.
func TestMatchesAreValidSequencesProperty(t *testing.T) {
	aliases := []string{"C1", "C2", "C3"}
	for _, mode := range []Mode{ModeUnrestricted, ModeRecent, ModeChronicle, ModeConsecutive} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			m := MustMatcher(seqDef(mode, aliases...))
			hist, _ := randomHistory(rng, aliases, 60)
			inHist := make(map[*stream.Tuple]bool, len(hist))
			for _, tu := range hist {
				inHist[tu] = true
				got, _ := m.Push(tu, tu.Schema.Name())
				for _, ev := range got {
					if len(ev.Groups) != len(aliases) {
						return false
					}
					for i, g := range ev.Groups {
						if len(g) != 1 || !inHist[g[0]] || g[0].Schema.Name() != aliases[i] {
							return false
						}
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

// Property: the exception matcher over a random history never loses track —
// completions plus wrong-tuple/bad-start exceptions account for every
// terminal state, and completion level always stays within bounds.
func TestExceptionLevelBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustExceptionMatcher(Def{
			Steps: []Step{{Alias: "A1"}, {Alias: "A2"}, {Alias: "A3"}},
			Mode:  ModeConsecutive,
		})
		hist, _ := randomHistory(rng, []string{"A1", "A2", "A3"}, 60)
		for _, tu := range hist {
			_, exs, err := m.Push(tu, tu.Schema.Name())
			if err != nil {
				return false
			}
			for _, x := range exs {
				if x.Level < 0 || x.Level >= 3 {
					return false
				}
			}
			if lv := m.CompletionLevel(stream.Null); lv < 0 || lv >= 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
