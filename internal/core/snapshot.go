package core

import (
	"sort"

	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/window"
)

// Matcher, ExceptionMatcher and the per-partition engines serialize data
// only: the Def (steps, filters, predicates) is rebuilt by re-executing the
// same query against a fresh engine, and Load verifies the snapshot's shape
// against it. Copy-on-write sharing between forked runs is flattened — the
// cap-limited group slices reallocate on append either way, so a deep
// restore is behaviorally identical.

// saveMatch serializes a match's bound groups (tuples interned by the
// encoder, so sharing across runs costs one table entry).
func saveMatch(enc *snapshot.Encoder, m *Match) {
	enc.Value(m.Key)
	enc.Uvarint(uint64(len(m.Groups)))
	for _, g := range m.Groups {
		enc.Uvarint(uint64(len(g)))
		for _, t := range g {
			enc.Tuple(t)
		}
	}
}

func loadMatch(dec *snapshot.Decoder) (*Match, error) {
	key, err := dec.Value()
	if err != nil {
		return nil, err
	}
	ng, err := dec.Len()
	if err != nil {
		return nil, err
	}
	m := &Match{Groups: make([][]*stream.Tuple, ng), Key: key}
	for i := 0; i < ng; i++ {
		n, err := dec.Len()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			continue
		}
		g := make([]*stream.Tuple, 0, n)
		for j := 0; j < n; j++ {
			t, err := dec.Tuple()
			if err != nil {
				return nil, err
			}
			if t == nil {
				return nil, snapshot.Corruptf("nil tuple bound in match group")
			}
			g = append(g, t)
		}
		m.Groups[i] = g
	}
	return m, nil
}

// --- run engine ---

func (e *runEngine) save(enc *snapshot.Encoder) {
	enc.Uvarint(uint64(len(e.buckets)))
	for _, bkt := range e.buckets {
		enc.Uvarint(uint64(len(bkt)))
		for _, r := range bkt {
			saveRun(enc, r)
		}
	}
	enc.Bool(e.cons != nil)
	if e.cons != nil {
		saveRun(enc, e.cons)
	}
	enc.Int(e.count)
	enc.Uvarint(e.nextOrd)
}

func saveRun(enc *snapshot.Encoder, r *run) {
	saveMatch(enc, r.m)
	enc.Int(r.cur)
	enc.TS(r.last)
	enc.Uvarint(r.ord)
}

func loadRun(dec *snapshot.Decoder) (*run, error) {
	m, err := loadMatch(dec)
	if err != nil {
		return nil, err
	}
	cur, err := dec.Int()
	if err != nil {
		return nil, err
	}
	last, err := dec.TS()
	if err != nil {
		return nil, err
	}
	ord, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	return &run{m: m, cur: cur, last: last, ord: ord}, nil
}

func (e *runEngine) load(dec *snapshot.Decoder) error {
	nb, err := dec.Len()
	if err != nil {
		return err
	}
	if nb != len(e.buckets) {
		return snapshot.Mismatchf("run engine has %d buckets, snapshot has %d", len(e.buckets), nb)
	}
	live := 0
	for bi := range e.buckets {
		n, err := dec.Len()
		if err != nil {
			return err
		}
		bkt := e.buckets[bi][:0]
		for j := 0; j < n; j++ {
			r, err := loadRun(dec)
			if err != nil {
				return err
			}
			if len(r.m.Groups) != len(e.def.Steps) {
				return snapshot.Mismatchf("run has %d groups, pattern has %d steps", len(r.m.Groups), len(e.def.Steps))
			}
			r.bkt = int32(bi)
			r.pos = int32(j)
			bkt = append(bkt, r)
		}
		e.buckets[bi] = bkt
		live += n
	}
	hasCons, err := dec.Bool()
	if err != nil {
		return err
	}
	e.cons = nil
	if hasCons {
		r, err := loadRun(dec)
		if err != nil {
			return err
		}
		r.bkt = -1
		e.cons = r
	}
	count, err := dec.Int()
	if err != nil {
		return err
	}
	if count != live {
		return snapshot.Corruptf("run count %d disagrees with %d serialized runs", count, live)
	}
	e.count = count
	if e.nextOrd, err = dec.Uvarint(); err != nil {
		return err
	}
	e.visit = e.visit[:0]
	return nil
}

// --- chain engine ---

func (e *chainEngine) save(enc *snapshot.Encoder) {
	enc.Uvarint(uint64(len(e.bufs)))
	for _, b := range e.bufs {
		b.Save(enc)
	}
	enc.Uvarint(uint64(len(e.chains)))
	for _, c := range e.chains {
		enc.Bool(c != nil)
		if c != nil {
			saveMatch(enc, c)
		}
	}
}

func (e *chainEngine) load(dec *snapshot.Decoder) error {
	nb, err := dec.Len()
	if err != nil {
		return err
	}
	if nb != len(e.bufs) {
		return snapshot.Mismatchf("chain engine has %d history buffers, snapshot has %d", len(e.bufs), nb)
	}
	for _, b := range e.bufs {
		if err := b.Load(dec); err != nil {
			return err
		}
	}
	nc, err := dec.Len()
	if err != nil {
		return err
	}
	if nc != len(e.chains) {
		return snapshot.Mismatchf("chain engine has %d chains, snapshot has %d", len(e.chains), nc)
	}
	for i := range e.chains {
		has, err := dec.Bool()
		if err != nil {
			return err
		}
		if !has {
			e.chains[i] = nil
			continue
		}
		if e.chains[i], err = loadMatch(dec); err != nil {
			return err
		}
	}
	return nil
}

// --- Matcher ---

// Save serializes the matcher's live state: every partition's engine, in
// deterministic (key hash, collision-chain position) order so the same
// logical state always yields the same bytes.
func (m *Matcher) Save(enc *snapshot.Encoder) {
	enc.TS(m.clock)
	if m.single != nil {
		enc.Bool(false)
		m.single.save(enc)
		return
	}
	enc.Bool(true)
	refs := sortedPartitions(m.parts)
	enc.Uvarint(uint64(len(refs)))
	for _, p := range refs {
		enc.Value(p.key)
		p.eng.save(enc)
	}
}

func sortedPartitions(parts map[uint64][]*partition) []*partition {
	type ref struct {
		h uint64
		i int
		p *partition
	}
	refs := make([]ref, 0, len(parts))
	for h, chain := range parts {
		for i, p := range chain {
			refs = append(refs, ref{h: h, i: i, p: p})
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].h != refs[b].h {
			return refs[a].h < refs[b].h
		}
		return refs[a].i < refs[b].i
	})
	out := make([]*partition, len(refs))
	for i, r := range refs {
		out[i] = r.p
	}
	return out
}

// Load restores state saved by Save into a matcher built from the same
// pattern. Loading into a differently-shaped matcher (partitioning, step
// count, mode) returns ErrStateMismatch.
func (m *Matcher) Load(dec *snapshot.Decoder) error {
	clock, err := dec.TS()
	if err != nil {
		return err
	}
	m.clock = clock
	part, err := dec.Bool()
	if err != nil {
		return err
	}
	if part != m.def.Partitioned() {
		return snapshot.Mismatchf("matcher partitioned=%v, snapshot partitioned=%v", m.def.Partitioned(), part)
	}
	if !part {
		return m.single.load(dec)
	}
	n, err := dec.Len()
	if err != nil {
		return err
	}
	m.parts = make(map[uint64][]*partition, n)
	m.nparts = 0
	for i := 0; i < n; i++ {
		key, err := dec.Value()
		if err != nil {
			return err
		}
		if err := m.partitionFor(key).eng.load(dec); err != nil {
			return err
		}
	}
	return nil
}

// --- ExceptionMatcher ---

// Save serializes the exception automaton: per-partition run state plus the
// pending active-expiration deadlines. Timer schedule ordinals are
// rank-normalized (1..k over the live timers) so a save→load→save cycle is
// byte-stable; only relative order among live timers affects firing.
func (m *ExceptionMatcher) Save(enc *snapshot.Encoder) {
	ranks := m.timerRanks()
	if m.single != nil {
		enc.Bool(false)
		saveExState(enc, m.single, ranks)
		return
	}
	enc.Bool(true)
	type ref struct {
		h uint64
		i int
		p *exPartition
	}
	refs := make([]ref, 0, len(m.parts))
	for h, chain := range m.parts {
		for i, p := range chain {
			refs = append(refs, ref{h: h, i: i, p: p})
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].h != refs[b].h {
			return refs[a].h < refs[b].h
		}
		return refs[a].i < refs[b].i
	})
	enc.Uvarint(uint64(len(refs)))
	for _, r := range refs {
		enc.Value(r.p.key)
		saveExState(enc, r.p.st, ranks)
	}
}

// timerRanks maps each live timer to its 1-based rank by schedule ordinal.
func (m *ExceptionMatcher) timerRanks() map[*window.Timer]uint64 {
	collect := func(st *exState, tms *[]*window.Timer) {
		if st.timer != nil {
			*tms = append(*tms, st.timer)
		}
	}
	var tms []*window.Timer
	if m.single != nil {
		collect(m.single, &tms)
	} else {
		for _, chain := range m.parts {
			for _, p := range chain {
				collect(p.st, &tms)
			}
		}
	}
	sort.Slice(tms, func(i, j int) bool { return tms[i].Seq() < tms[j].Seq() })
	ranks := make(map[*window.Timer]uint64, len(tms))
	for i, tm := range tms {
		ranks[tm] = uint64(i + 1)
	}
	return ranks
}

func saveExState(enc *snapshot.Encoder, st *exState, ranks map[*window.Timer]uint64) {
	enc.Bool(st.run != nil)
	if st.run != nil {
		saveMatch(enc, st.run)
	}
	enc.Int(st.cur)
	enc.Bool(st.timer != nil)
	if st.timer != nil {
		enc.TS(st.timer.At)
		enc.Uvarint(ranks[st.timer])
	}
}

type exTimerLoad struct {
	rank uint64
	at   stream.Timestamp
	st   *exState
}

func loadExState(dec *snapshot.Decoder, st *exState, pend *[]exTimerLoad) error {
	hasRun, err := dec.Bool()
	if err != nil {
		return err
	}
	if hasRun {
		if st.run, err = loadMatch(dec); err != nil {
			return err
		}
	} else {
		st.run = nil
	}
	if st.cur, err = dec.Int(); err != nil {
		return err
	}
	hasTimer, err := dec.Bool()
	if err != nil {
		return err
	}
	if !hasTimer {
		st.timer = nil
		return nil
	}
	at, err := dec.TS()
	if err != nil {
		return err
	}
	rank, err := dec.Uvarint()
	if err != nil {
		return err
	}
	*pend = append(*pend, exTimerLoad{rank: rank, at: at, st: st})
	return nil
}

// Load restores state saved by Save into a matcher built from the same
// pattern, re-arming the expiration timers in their saved relative order.
func (m *ExceptionMatcher) Load(dec *snapshot.Decoder) error {
	part, err := dec.Bool()
	if err != nil {
		return err
	}
	if part != m.def.Partitioned() {
		return snapshot.Mismatchf("exception matcher partitioned=%v, snapshot partitioned=%v", m.def.Partitioned(), part)
	}
	var pend []exTimerLoad
	if !part {
		if err := loadExState(dec, m.single, &pend); err != nil {
			return err
		}
	} else {
		n, err := dec.Len()
		if err != nil {
			return err
		}
		m.parts = make(map[uint64][]*exPartition, n)
		for i := 0; i < n; i++ {
			key, err := dec.Value()
			if err != nil {
				return err
			}
			if err := loadExState(dec, m.partitionFor(key), &pend); err != nil {
				return err
			}
		}
	}
	// Re-arm in saved rank order: a fresh Timers queue assigns ordinals
	// 1..k, reproducing both same-instant firing order and the saved ranks.
	sort.Slice(pend, func(i, j int) bool { return pend[i].rank < pend[j].rank })
	m.timers = window.Timers{}
	for _, tl := range pend {
		tl.st.timer = m.timers.Schedule(tl.at, tl.st)
	}
	return nil
}
