package core

import (
	"fmt"

	"repro/internal/stream"
	"repro/internal/window"
)

// BreakReason classifies why a sequence failed to complete (§3.1.3's three
// scenarios).
type BreakReason uint8

// The exception causes of §3.1.3.
const (
	// BreakWrongTuple: an existing partial sequence can no longer correctly
	// extend due to a wrong incoming tuple.
	BreakWrongTuple BreakReason = iota
	// BreakBadStart: an incoming tuple is not the correct event to start a
	// new sequence and cannot extend an existing one (completion level 0).
	BreakBadStart
	// BreakWindowExpired: the sliding window expired on a tuple of a
	// partial sequence — detected actively, without any new arrival.
	BreakWindowExpired
)

// String names the reason.
func (r BreakReason) String() string {
	switch r {
	case BreakWrongTuple:
		return "WRONG_TUPLE"
	case BreakBadStart:
		return "BAD_START"
	case BreakWindowExpired:
		return "WINDOW_EXPIRED"
	default:
		return fmt.Sprintf("BreakReason(%d)", uint8(r))
	}
}

// Exception is one EXCEPTION_SEQ event: a sequence stuck at a Sequence
// Completion Level below the pattern length.
type Exception struct {
	// Level is the Sequence Completion Level reached: the number of steps
	// the partial sequence completed (0 when the trigger could not even
	// start a sequence). The exception occurs at Level+1.
	Level int
	// Partial carries the tuples bound before the violation; it has empty
	// groups beyond Level. Nil for a bad start with no active sequence.
	Partial *Match
	// Trigger is the offending incoming tuple; nil for window expiration.
	Trigger *stream.Tuple
	Reason  BreakReason
	// TS is the event time of the exception: the trigger's timestamp, or
	// the window deadline for expirations.
	TS stream.Timestamp
}

// String renders the exception for alerts and logs.
func (x *Exception) String() string {
	s := fmt.Sprintf("exception[%s level=%d @%s]", x.Reason, x.Level, x.TS)
	if x.Partial != nil {
		s += " partial=" + x.Partial.String()
	}
	if x.Trigger != nil {
		s += fmt.Sprintf(" trigger=%s", x.Trigger)
	}
	return s
}

// ExceptionMatcher implements EXCEPTION_SEQ and CLEVEL_SEQ: it tracks one
// sequence at a time over the joint tuple history (per partition key) and
// reports every violation. The default semantics follow the paper's
// Example 5 analysis — "the correct sequence corresponds to SEQ(A,B,C)
// under the CONSECUTIVE mode with a sliding window" — so any joint-history
// tuple that cannot extend the active partial sequence raises an exception.
// ModeRecent is also supported: there, a repeat of an already-bound step
// replaces the earlier binding (raising the exception the paper describes),
// while other non-extending tuples are ignored rather than breaking the
// sequence.
//
// Window expiry is detected actively: deadlines are scheduled on a timer
// queue when the anchor step binds, and Advance fires them from heartbeats
// even when no tuple arrives.
type ExceptionMatcher struct {
	def    Def
	parts  map[uint64][]*exPartition
	single *exState
	timers window.Timers
}

type exPartition struct {
	key stream.Value
	st  *exState
}

type exState struct {
	key   stream.Value
	run   *Match
	cur   int // next step to bind; level == cur for the active run
	timer *window.Timer
}

// NewExceptionMatcher builds the matcher. Star steps are not supported in
// exception patterns (the paper defers them); ModeChronicle and
// ModeUnrestricted have no exception semantics and are rejected.
func NewExceptionMatcher(def Def) (*ExceptionMatcher, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	for i, s := range def.Steps {
		if s.Star {
			return nil, fmt.Errorf("core: EXCEPTION_SEQ step %d: star steps are not supported", i)
		}
	}
	if def.Mode != ModeConsecutive && def.Mode != ModeRecent && def.Mode != ModeUnrestricted {
		return nil, fmt.Errorf("core: EXCEPTION_SEQ does not support mode %s", def.Mode)
	}
	if def.Mode == ModeUnrestricted {
		// The paper's exception semantics presume a single tracked
		// sequence; treat the default mode as CONSECUTIVE.
		def.Mode = ModeConsecutive
	}
	m := &ExceptionMatcher{def: def}
	if def.Partitioned() {
		m.parts = make(map[uint64][]*exPartition)
	} else {
		m.single = &exState{key: stream.Null}
	}
	return m, nil
}

// MustExceptionMatcher panics on error, for tests and examples.
func MustExceptionMatcher(def Def) *ExceptionMatcher {
	m, err := NewExceptionMatcher(def)
	if err != nil {
		panic(err)
	}
	return m
}

// Def returns the pattern.
func (m *ExceptionMatcher) Def() *Def { return &m.def }

// Push offers one joint-history tuple under its aliases. It returns the
// completed matches (callers running pure EXCEPTION_SEQ may ignore them)
// and the exceptions raised by this arrival.
func (m *ExceptionMatcher) Push(t *stream.Tuple, aliases ...string) ([]*Match, []*Exception, error) {
	if len(aliases) == 0 {
		return nil, nil, fmt.Errorf("core: Push without aliases")
	}
	// Resolve which steps this tuple may bind (filters applied) into a
	// qualifying-step bitmask; the automaton only ever tests membership.
	var mask uint64
	first := -1
	for i := range m.def.Steps {
		st := &m.def.Steps[i]
		for _, a := range aliases {
			if st.Alias == a && (st.Filter == nil || st.Filter(t)) {
				mask |= 1 << uint(i)
				if first < 0 {
					first = i
				}
			}
		}
	}
	if mask == 0 {
		return nil, nil, nil
	}
	var matches []*Match
	var exs []*Exception
	if m.single != nil {
		m.step(m.single, mask, t, &matches, &exs)
		return matches, exs, nil
	}
	key := m.def.Steps[first].Key(t)
	st := m.partitionFor(key)
	m.step(st, mask, t, &matches, &exs)
	return matches, exs, nil
}

func (m *ExceptionMatcher) partitionFor(key stream.Value) *exState {
	h := key.Hash()
	for _, p := range m.parts[h] {
		if p.key.Equal(key) {
			return p.st
		}
	}
	p := &exPartition{key: key, st: &exState{key: key}}
	m.parts[h] = append(m.parts[h], p)
	return p.st
}

// step advances one partition's automaton with an arriving tuple.
func (m *ExceptionMatcher) step(st *exState, mask uint64, t *stream.Tuple, matches *[]*Match, exs *[]*Exception) {
	n := len(m.def.Steps)
	if st.run == nil {
		if maskHas(mask, 0) && predAdmits(&m.def, m.emptyMatch(st), 0, t) {
			m.start(st, t, matches)
			return
		}
		// §3.1.3 scenario 2: cannot start a new sequence.
		*exs = append(*exs, &Exception{Level: 0, Trigger: t, Reason: BreakBadStart, TS: t.TS})
		return
	}
	// Active run: does t bind the expected next step?
	if maskHas(mask, st.cur) &&
		windowAdmits(&m.def, st.run, st.cur, t) && predAdmits(&m.def, st.run, st.cur, t) {
		st.run.Groups[st.cur] = []*stream.Tuple{t}
		m.armTimer(st, st.cur, t)
		st.cur++
		if st.cur == n {
			*matches = append(*matches, st.run)
			m.reset(st)
		}
		return
	}
	if m.def.Mode == ModeRecent {
		// A repeat of an already-bound step replaces the binding and makes
		// the previous partial impossible to extend — the paper's RECENT
		// example ((A,B) then B).
		for s := 0; s < st.cur; s++ {
			if maskHas(mask, s) {
				*exs = append(*exs, &Exception{
					Level: st.cur, Partial: st.run.clone(), Trigger: t,
					Reason: BreakWrongTuple, TS: t.TS,
				})
				st.run.Groups[s] = []*stream.Tuple{t}
				for i := s + 1; i < st.cur; i++ {
					st.run.Groups[i] = nil
				}
				st.cur = s + 1
				return
			}
		}
		// Other non-extending tuples are ignored under RECENT pairing.
		return
	}
	// CONSECUTIVE: §3.1.3 scenario 1 — the wrong incoming tuple breaks the
	// partial sequence.
	*exs = append(*exs, &Exception{
		Level: st.cur, Partial: st.run.clone(), Trigger: t,
		Reason: BreakWrongTuple, TS: t.TS,
	})
	m.reset(st)
	// The breaking tuple may itself start a new sequence; otherwise it is
	// additionally a bad start (scenario 2).
	if maskHas(mask, 0) && predAdmits(&m.def, m.emptyMatch(st), 0, t) {
		m.start(st, t, matches)
		return
	}
	*exs = append(*exs, &Exception{Level: 0, Trigger: t, Reason: BreakBadStart, TS: t.TS})
}

func (m *ExceptionMatcher) emptyMatch(st *exState) *Match {
	return &Match{Groups: make([][]*stream.Tuple, len(m.def.Steps)), Key: st.key}
}

func (m *ExceptionMatcher) start(st *exState, t *stream.Tuple, matches *[]*Match) {
	st.run = m.emptyMatch(st)
	st.run.Groups[0] = []*stream.Tuple{t}
	st.cur = 1
	m.armTimer(st, 0, t)
	if st.cur == len(m.def.Steps) {
		*matches = append(*matches, st.run)
		m.reset(st)
	}
}

// armTimer schedules the active-expiration deadline when the window's
// anchor step has just bound at position justBound (FOLLOWING windows; a
// PRECEDING window anchored at the final step is equivalently armed from
// the first binding, since the sequence must then finish within the span
// of its first tuple).
func (m *ExceptionMatcher) armTimer(st *exState, justBound int, t *stream.Tuple) {
	w := m.def.Window
	if w == nil {
		return
	}
	var deadline stream.Timestamp
	switch {
	case w.Following && justBound == w.Step:
		deadline = t.TS.Add(w.Span)
	case !w.Following && w.Step == len(m.def.Steps)-1 && justBound == 0:
		// The whole sequence must finish within span of the first tuple.
		deadline = t.TS.Add(w.Span)
	default:
		return
	}
	m.timers.Cancel(st.timer)
	st.timer = m.timers.Schedule(deadline, st)
}

func (m *ExceptionMatcher) reset(st *exState) {
	m.timers.Cancel(st.timer)
	st.timer = nil
	st.run = nil
	st.cur = 0
}

// Advance moves event time forward, firing expired windows (§3.1.3
// scenario 3). It must be driven by heartbeats as well as tuples so that
// expirations surface without new arrivals — Active Expiration.
func (m *ExceptionMatcher) Advance(ts stream.Timestamp) []*Exception {
	var exs []*Exception
	for _, tm := range m.timers.PopDue(ts) {
		st := tm.Payload.(*exState)
		if st.timer != tm || st.run == nil {
			continue
		}
		st.timer = nil
		exs = append(exs, &Exception{
			Level: st.cur, Partial: st.run, Reason: BreakWindowExpired, TS: tm.At,
		})
		m.reset(st)
	}
	return exs
}

// CompletionLevel returns the current Sequence Completion Level of the
// (single or per-key) active sequence — the CLEVEL_SEQ operator's value
// between arrivals. A full pattern completion resets to 0.
func (m *ExceptionMatcher) CompletionLevel(key stream.Value) int {
	if m.single != nil {
		return m.single.cur
	}
	for _, p := range m.parts[key.Hash()] {
		if p.key.Equal(key) {
			return p.st.cur
		}
	}
	return 0
}

// StateSize reports retained tuples across partitions.
func (m *ExceptionMatcher) StateSize() int {
	count := func(st *exState) int {
		if st.run == nil {
			return 0
		}
		n := 0
		for _, g := range st.run.Groups {
			n += len(g)
		}
		return n
	}
	if m.single != nil {
		return count(m.single)
	}
	n := 0
	for _, chain := range m.parts {
		for _, p := range chain {
			n += count(p.st)
		}
	}
	return n
}
