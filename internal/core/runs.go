package core

import (
	"repro/internal/stream"
)

// runEngine matches patterns that need run-at-a-time state: star sequences
// (repeating steps with longest-match semantics) and everything in
// CONSECUTIVE mode, where only tuples adjacent on the joint history form
// events.
//
// A run is a partial match filling its steps left to right. Non-star steps
// bind one tuple and advance; a star step stays "open", absorbing further
// tuples of its stream (subject to the MaxGap inter-arrival constraint)
// until a tuple of the following step closes it — longest match, per
// §3.1.2. A trailing star emits online: one event per absorbed tuple, since
// "there might be no valid indicator to tell us to stop matching".
type runEngine struct {
	def  *Def
	key  stream.Value
	runs []*run // in start order (oldest first); CONSECUTIVE keeps <= 1
}

type run struct {
	m    *Match
	cur  int              // step being filled; groups[cur] empty = waiting, non-empty = open star
	last stream.Timestamp // event time of the most recently bound tuple
}

func newRunEngine(def *Def, key stream.Value) engine {
	return &runEngine{def: def, key: key}
}

func (e *runEngine) newRun() *run {
	return &run{m: &Match{Groups: make([][]*stream.Tuple, len(e.def.Steps)), Key: e.key}}
}

// open reports whether the run's current step is a star group already
// holding tuples (still absorbing).
func (e *runEngine) open(r *run) bool {
	return r.cur < len(e.def.Steps) && len(r.m.Groups[r.cur]) > 0
}

// level counts completed steps: steps before cur, plus the current star
// group once it holds at least one tuple.
func (e *runEngine) level(r *run) int {
	if e.open(r) {
		return r.cur + 1
	}
	return r.cur
}

func (e *runEngine) push(steps []int, t *stream.Tuple) ([]*Match, error) {
	if e.def.Mode == ModeConsecutive {
		return e.pushConsecutive(steps, t), nil
	}
	return e.pushPending(steps, t), nil
}

// ---- CONSECUTIVE ----------------------------------------------------------

// pushConsecutive advances the single active run over the joint history.
// Every pushed tuple is part of the joint history; one that cannot extend
// the run breaks it, and may start a fresh run at step 0.
func (e *runEngine) pushConsecutive(steps []int, t *stream.Tuple) []*Match {
	var out []*Match
	if len(e.runs) == 1 {
		r := e.runs[0]
		if done, matched := e.tryExtend(r, steps, t, &out); matched {
			if done {
				e.runs = e.runs[:0]
			}
			return out
		}
		// Break: the run dies; the breaking tuple may start a new one.
		e.runs = e.runs[:0]
	}
	if r, ok := e.tryStart(steps, t, &out); ok {
		e.runs = append(e.runs, r)
	}
	return out
}

// tryExtend attempts to absorb t into r's open star group or bind it to the
// next step. done reports the run completed (emitted); matched reports t
// was accepted at all.
func (e *runEngine) tryExtend(r *run, steps []int, t *stream.Tuple, out *[]*Match) (done, matched bool) {
	last := len(e.def.Steps) - 1
	// Absorb into the open star group (longest match: prefer absorbing over
	// closing the group).
	if e.open(r) && e.def.Steps[r.cur].Star && stepIn(steps, r.cur) {
		g := r.m.Groups[r.cur]
		st := &e.def.Steps[r.cur]
		if gapAdmits(st, g[len(g)-1], t) &&
			windowAdmits(e.def, r.m, r.cur, t) && predAdmits(e.def, r.m, r.cur, t) {
			r.m.Groups[r.cur] = append(g, t)
			r.last = t.TS
			if r.cur == last {
				*out = append(*out, r.m.clone()) // online emission
			}
			return false, true
		}
		// Gap or constraint violation: fall through to try closing the
		// group and binding the next step; otherwise it is a break.
	}
	target := r.cur
	if e.open(r) {
		target = r.cur + 1
	}
	if target > last || !stepIn(steps, target) {
		return false, false
	}
	if !windowAdmits(e.def, r.m, target, t) || !predAdmits(e.def, r.m, target, t) {
		return false, false
	}
	r.m.Groups[target] = []*stream.Tuple{t}
	r.last = t.TS
	r.cur = target
	if e.def.Steps[target].Star {
		if target == last {
			*out = append(*out, r.m.clone())
		}
		return false, true
	}
	if target == last {
		*out = append(*out, r.m.clone())
		return true, true
	}
	r.cur = target + 1
	return false, true
}

// tryStart begins a new run with t at step 0.
func (e *runEngine) tryStart(steps []int, t *stream.Tuple, out *[]*Match) (*run, bool) {
	if !stepIn(steps, 0) {
		return nil, false
	}
	r := e.newRun()
	if !windowAdmits(e.def, r.m, 0, t) || !predAdmits(e.def, r.m, 0, t) {
		return nil, false
	}
	last := len(e.def.Steps) - 1
	r.m.Groups[0] = []*stream.Tuple{t}
	r.last = t.TS
	if e.def.Steps[0].Star {
		if last == 0 {
			*out = append(*out, r.m.clone())
		}
		return r, true
	}
	if last == 0 {
		*out = append(*out, r.m.clone())
		return nil, false // complete; nothing pending
	}
	r.cur = 1
	return r, true
}

// ---- UNRESTRICTED / RECENT / CHRONICLE with stars -------------------------

// pushPending maintains a set of pending runs. Mode picks which runs an
// arriving tuple binds to: CHRONICLE the earliest qualifying run (and the
// tuple participates only once), RECENT the most recent qualifying run,
// UNRESTRICTED every qualifying run (advancing forks a copy so the original
// remains available to later combinations).
func (e *runEngine) pushPending(steps []int, t *stream.Tuple) []*Match {
	var out []*Match
	consumed := false // CHRONICLE: tuple participates at most once
	for _, s := range steps {
		if consumed {
			break
		}
		absorbed := e.absorb(s, t, &out)
		if absorbed && e.def.Mode == ModeChronicle {
			consumed = true
			break
		}
		bound := false
		if !absorbed {
			bound = e.bind(s, t, &out)
			if bound && e.def.Mode == ModeChronicle {
				consumed = true
				break
			}
		}
		// A step-0 tuple that joined no existing star run starts a new run.
		// (Non-star step 0 in UNRESTRICTED always forks a new run, since
		// every choice of step-0 tuple is a distinct combination.)
		if s == 0 && !absorbed && (!bound || (e.def.Mode == ModeUnrestricted && !e.def.Steps[0].Star)) {
			if r, ok := e.tryStart(steps, t, &out); ok {
				e.startRun(r)
			}
		}
	}
	return out
}

// startRun appends a new run, applying RECENT's one-run-per-level purge.
func (e *runEngine) startRun(r *run) {
	if e.def.Mode == ModeRecent {
		e.replaceAtLevel(r)
		return
	}
	e.runs = append(e.runs, r)
}

// replaceAtLevel keeps at most one run per completion level under RECENT:
// the newest (the "most recent qualifying" candidate).
func (e *runEngine) replaceAtLevel(r *run) {
	lvl := e.level(r)
	for i, x := range e.runs {
		if e.level(x) == lvl {
			e.runs[i] = r
			return
		}
	}
	e.runs = append(e.runs, r)
}

// absorb extends open star groups at step s. Returns whether t was absorbed
// anywhere.
func (e *runEngine) absorb(s int, t *stream.Tuple, out *[]*Match) bool {
	if !e.def.Steps[s].Star {
		return false
	}
	last := len(e.def.Steps) - 1
	any := false
	// CHRONICLE scans oldest-first, RECENT newest-first; UNRESTRICTED
	// extends all open groups.
	e.eachRun(func(r *run) bool {
		if r.cur != s || !e.open(r) {
			return true
		}
		g := r.m.Groups[s]
		st := &e.def.Steps[s]
		if !gapAdmits(st, g[len(g)-1], t) ||
			!windowAdmits(e.def, r.m, s, t) || !predAdmits(e.def, r.m, s, t) {
			return true
		}
		r.m.Groups[s] = append(g, t)
		r.last = t.TS
		any = true
		if s == last {
			*out = append(*out, r.m.clone())
		}
		return e.def.Mode == ModeUnrestricted // others bind a single run
	})
	return any
}

// bind attaches t at step s to qualifying runs waiting there (group empty
// and cur == s) or closes an open star group at s-1. Completed runs are
// emitted; CHRONICLE removes them (participants consumed).
func (e *runEngine) bind(s int, t *stream.Tuple, out *[]*Match) bool {
	last := len(e.def.Steps) - 1
	bound := false
	var dead []*run
	e.eachRun(func(r *run) bool {
		ready := (r.cur == s && !e.open(r)) || (r.cur == s-1 && e.open(r))
		if !ready {
			return true
		}
		if !windowAdmits(e.def, r.m, s, t) || !predAdmits(e.def, r.m, s, t) {
			return true
		}
		target := r // CHRONICLE/RECENT advance in place
		if e.def.Mode == ModeUnrestricted {
			target = &run{m: r.m.clone(), cur: r.cur}
		}
		target.m.Groups[s] = []*stream.Tuple{t}
		target.last = t.TS
		target.cur = s
		bound = true
		switch {
		case e.def.Steps[s].Star:
			if s == last {
				*out = append(*out, target.m.clone())
			}
			if target != r {
				e.runs = append(e.runs, target)
			}
		case s == last:
			*out = append(*out, target.m.clone())
			if target == r {
				dead = append(dead, r)
			}
		default:
			target.cur = s + 1
			if target != r {
				e.runs = append(e.runs, target)
			}
		}
		// RECENT binds the single most recent qualifying run; CHRONICLE the
		// earliest; UNRESTRICTED continues over all.
		return e.def.Mode == ModeUnrestricted
	})
	for _, d := range dead {
		e.removeRun(d)
	}
	return bound
}

// eachRun visits pending runs in mode order: CHRONICLE and UNRESTRICTED
// oldest-first, RECENT newest-first. The visit snapshot tolerates appends
// made by the callback.
func (e *runEngine) eachRun(fn func(*run) bool) {
	snapshot := e.runs
	if e.def.Mode == ModeRecent {
		for i := len(snapshot) - 1; i >= 0; i-- {
			if !fn(snapshot[i]) {
				return
			}
		}
		return
	}
	for _, r := range snapshot {
		if !fn(r) {
			return
		}
	}
}

func (e *runEngine) removeRun(r *run) {
	for i, x := range e.runs {
		if x == r {
			e.runs = append(e.runs[:i], e.runs[i+1:]...)
			return
		}
	}
}

// advance evicts runs whose window can no longer be satisfied at event time
// ts: with a PRECEDING window anchored at an unbound step, a run whose
// earliest tuple has fallen out of every possible future window is dead;
// with a FOLLOWING window whose anchor is bound, the run dies once the span
// after the anchor has fully elapsed.
func (e *runEngine) advance(ts stream.Timestamp) {
	if len(e.runs) == 0 || (e.def.Window == nil && e.def.ExpireAfter == 0) {
		return
	}
	kept := e.runs[:0]
	for _, r := range e.runs {
		if e.expired(r, ts) || e.idle(r, ts) {
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(e.runs); i++ {
		e.runs[i] = nil
	}
	e.runs = kept
}

// idle applies Def.ExpireAfter to runs that stopped making progress.
func (e *runEngine) idle(r *run, ts stream.Timestamp) bool {
	return e.def.ExpireAfter > 0 && r.last < ts.Add(-e.def.ExpireAfter)
}

func (e *runEngine) expired(r *run, ts stream.Timestamp) bool {
	w := e.def.Window
	if w == nil {
		return false
	}
	anchorBound := e.level(r) > w.Step
	if w.Following {
		if !anchorBound {
			return false
		}
		anchor := r.m.Last(w.Step)
		return ts > anchor.TS.Add(w.Span)
	}
	if anchorBound {
		return false
	}
	first := r.m.First(0)
	return first != nil && first.TS < ts.Add(-w.Span)
}

func (e *runEngine) stateSize() int {
	n := 0
	for _, r := range e.runs {
		for _, g := range r.m.Groups {
			n += len(g)
		}
	}
	return n
}

func stepIn(steps []int, s int) bool {
	for _, x := range steps {
		if x == s {
			return true
		}
	}
	return false
}
