package core

import (
	"sort"

	"repro/internal/stream"
)

// runEngine matches patterns that need run-at-a-time state: star sequences
// (repeating steps with longest-match semantics) and everything in
// CONSECUTIVE mode, where only tuples adjacent on the joint history form
// events.
//
// A run is a partial match filling its steps left to right. Non-star steps
// bind one tuple and advance; a star step stays "open", absorbing further
// tuples of its stream (subject to the MaxGap inter-arrival constraint)
// until a tuple of the following step closes it — longest match, per
// §3.1.2. A trailing star emits online: one event per absorbed tuple, since
// "there might be no valid indicator to tell us to stop matching".
//
// Pending runs live in per-(step, phase) buckets: index cur*2 while the run
// waits for step cur to bind, cur*2+1 while step cur is an open star group
// still absorbing. absorb(s) therefore touches only bucket (s, open) and
// bind(s) only buckets (s, waiting) and (s-1, open), instead of scanning
// every pending run. Each bucket is kept sorted by the run's creation
// ordinal, so CHRONICLE's oldest-first and RECENT's newest-first visit
// orders fall out of a forward or backward merge of two bucket slices —
// the ordering invariant the pairing modes are defined by. RECENT's
// replace-at-level substitutes the victim's ordinal into its replacement,
// preserving the victim's slot in the visit order exactly as the old
// in-place slice write did.
type runEngine struct {
	def *Def
	key stream.Value

	buckets [][]*run // [cur*2 + openBit], each ascending by ord
	cons    *run     // CONSECUTIVE's single active run (buckets unused)
	count   int      // live runs across buckets (cons excluded)
	nextOrd uint64

	visit []*run // scratch snapshot for bind's two-bucket merge
	free  []*run // recycled run+Match shells (group arrays dropped)
}

type run struct {
	m    *Match
	cur  int              // step being filled; groups[cur] empty = waiting, non-empty = open star
	last stream.Timestamp // event time of the most recently bound tuple
	ord  uint64           // creation ordinal; RECENT replacement inherits its victim's
	bkt  int32            // bucket index, -1 while detached
	pos  int32            // position within the bucket
}

func newRunEngine(def *Def, key stream.Value) engine {
	return &runEngine{def: def, key: key, buckets: make([][]*run, 2*len(def.Steps))}
}

// runPoolCap bounds the free list so a burst of evictions cannot pin
// memory forever.
const runPoolCap = 128

func (e *runEngine) newRun() *run {
	if n := len(e.free); n > 0 {
		r := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return r
	}
	return &run{
		m:   &Match{Groups: make([][]*stream.Tuple, len(e.def.Steps)), Key: e.key},
		bkt: -1,
	}
}

// release returns a dead run to the pool. Group arrays are dropped rather
// than truncated for reuse: under UNRESTRICTED copy-on-write forking they
// may still be shared with live runs or in-flight forks, and an append
// into a reused array would corrupt a sibling.
func (e *runEngine) release(r *run) {
	if len(e.free) >= runPoolCap {
		return
	}
	for i := range r.m.Groups {
		r.m.Groups[i] = nil
	}
	*r = run{m: r.m, bkt: -1}
	e.free = append(e.free, r)
}

// place inserts r into the bucket implied by its cur/open state, keeping
// the bucket sorted by ord. New runs and forks carry a fresh maximal
// ordinal and append in O(1); runs migrating between buckets binary-insert.
func (e *runEngine) place(r *run) {
	bi := r.cur * 2
	if e.open(r) {
		bi++
	}
	b := e.buckets[bi]
	i := len(b)
	if i > 0 && b[i-1].ord > r.ord {
		i = sort.Search(len(b), func(j int) bool { return b[j].ord > r.ord })
	}
	b = append(b, nil)
	copy(b[i+1:], b[i:])
	b[i] = r
	r.bkt = int32(bi)
	for j := i; j < len(b); j++ {
		b[j].pos = int32(j)
	}
	e.buckets[bi] = b
	e.count++
}

// detach unlinks r from its bucket in O(bucket), preserving the order of
// the remaining runs.
func (e *runEngine) detach(r *run) {
	b := e.buckets[r.bkt]
	i := int(r.pos)
	copy(b[i:], b[i+1:])
	b[len(b)-1] = nil
	b = b[:len(b)-1]
	for j := i; j < len(b); j++ {
		b[j].pos = int32(j)
	}
	e.buckets[r.bkt] = b
	r.bkt = -1
	e.count--
}

// open reports whether the run's current step is a star group already
// holding tuples (still absorbing).
func (e *runEngine) open(r *run) bool {
	return r.cur < len(e.def.Steps) && len(r.m.Groups[r.cur]) > 0
}

// level counts completed steps: steps before cur, plus the current star
// group once it holds at least one tuple.
func (e *runEngine) level(r *run) int {
	if e.open(r) {
		return r.cur + 1
	}
	return r.cur
}

func (e *runEngine) push(steps []int, mask uint64, t *stream.Tuple) ([]*Match, error) {
	if e.def.Mode == ModeConsecutive {
		return e.pushConsecutive(mask, t), nil
	}
	return e.pushPending(steps, mask, t), nil
}

// ---- CONSECUTIVE ----------------------------------------------------------

// pushConsecutive advances the single active run over the joint history.
// Every pushed tuple is part of the joint history; one that cannot extend
// the run breaks it, and may start a fresh run at step 0.
func (e *runEngine) pushConsecutive(mask uint64, t *stream.Tuple) []*Match {
	var out []*Match
	if r := e.cons; r != nil {
		if done, matched := e.tryExtend(r, mask, t, &out); matched {
			if done {
				e.cons = nil
				e.release(r)
			}
			return out
		}
		// Break: the run dies; the breaking tuple may start a new one.
		e.cons = nil
		e.release(r)
	}
	if r, ok := e.tryStart(mask, t, &out); ok {
		e.cons = r
	}
	return out
}

// tryExtend attempts to absorb t into r's open star group or bind it to the
// next step. done reports the run completed (emitted); matched reports t
// was accepted at all.
func (e *runEngine) tryExtend(r *run, mask uint64, t *stream.Tuple, out *[]*Match) (done, matched bool) {
	last := len(e.def.Steps) - 1
	// Absorb into the open star group (longest match: prefer absorbing over
	// closing the group).
	if e.open(r) && e.def.Steps[r.cur].Star && maskHas(mask, r.cur) {
		g := r.m.Groups[r.cur]
		st := &e.def.Steps[r.cur]
		if gapAdmits(st, g[len(g)-1], t) &&
			windowAdmits(e.def, r.m, r.cur, t) && predAdmits(e.def, r.m, r.cur, t) {
			r.m.Groups[r.cur] = append(g, t)
			r.last = t.TS
			if r.cur == last {
				*out = append(*out, r.m.clone()) // online emission
			}
			return false, true
		}
		// Gap or constraint violation: fall through to try closing the
		// group and binding the next step; otherwise it is a break.
	}
	target := r.cur
	if e.open(r) {
		target = r.cur + 1
	}
	if target > last || !maskHas(mask, target) {
		return false, false
	}
	if !windowAdmits(e.def, r.m, target, t) || !predAdmits(e.def, r.m, target, t) {
		return false, false
	}
	r.m.Groups[target] = []*stream.Tuple{t}
	r.last = t.TS
	r.cur = target
	if e.def.Steps[target].Star {
		if target == last {
			*out = append(*out, r.m.clone())
		}
		return false, true
	}
	if target == last {
		*out = append(*out, r.m.clone())
		return true, true
	}
	r.cur = target + 1
	return false, true
}

// tryStart begins a new run with t at step 0.
func (e *runEngine) tryStart(mask uint64, t *stream.Tuple, out *[]*Match) (*run, bool) {
	if mask&1 == 0 {
		return nil, false
	}
	r := e.newRun()
	if !windowAdmits(e.def, r.m, 0, t) || !predAdmits(e.def, r.m, 0, t) {
		e.release(r)
		return nil, false
	}
	last := len(e.def.Steps) - 1
	r.m.Groups[0] = []*stream.Tuple{t}
	r.last = t.TS
	if e.def.Steps[0].Star {
		if last == 0 {
			*out = append(*out, r.m.clone())
		}
		return r, true
	}
	if last == 0 {
		*out = append(*out, r.m.clone())
		e.release(r)
		return nil, false // complete; nothing pending
	}
	r.cur = 1
	return r, true
}

// ---- UNRESTRICTED / RECENT / CHRONICLE with stars -------------------------

// pushPending maintains the bucketed set of pending runs. Mode picks which
// runs an arriving tuple binds to: CHRONICLE the earliest qualifying run
// (and the tuple participates only once), RECENT the most recent qualifying
// run, UNRESTRICTED every qualifying run (advancing forks a copy-on-write
// run so the original remains available to later combinations).
func (e *runEngine) pushPending(steps []int, mask uint64, t *stream.Tuple) []*Match {
	var out []*Match
	for _, s := range steps {
		absorbed := e.absorb(s, t, &out)
		if absorbed && e.def.Mode == ModeChronicle {
			break // CHRONICLE: tuple participates at most once
		}
		bound := false
		if !absorbed {
			bound = e.bind(s, t, &out)
			if bound && e.def.Mode == ModeChronicle {
				break
			}
		}
		// A step-0 tuple that joined no existing star run starts a new run.
		// (Non-star step 0 in UNRESTRICTED always forks a new run, since
		// every choice of step-0 tuple is a distinct combination.)
		if s == 0 && !absorbed && (!bound || (e.def.Mode == ModeUnrestricted && !e.def.Steps[0].Star)) {
			if r, ok := e.tryStart(mask, t, &out); ok {
				e.startRun(r)
			}
		}
	}
	return out
}

// startRun registers a new run, applying RECENT's one-run-per-level purge.
func (e *runEngine) startRun(r *run) {
	if e.def.Mode == ModeRecent {
		e.replaceAtLevel(r)
		return
	}
	r.ord = e.nextOrd
	e.nextOrd++
	e.place(r)
}

// replaceAtLevel keeps at most one run per completion level under RECENT:
// the newest (the "most recent qualifying" candidate) replaces the oldest
// run at the same level, inheriting its ordinal and therefore its slot in
// the newest-first visit order.
func (e *runEngine) replaceAtLevel(r *run) {
	lvl := e.level(r)
	// Level lvl runs live in bucket (lvl, waiting) or (lvl-1, open); the
	// victim is the lowest-ordinal run across both, i.e. each bucket's head.
	var victim *run
	if bi := lvl * 2; bi < len(e.buckets) && len(e.buckets[bi]) > 0 {
		victim = e.buckets[bi][0]
	}
	if lvl > 0 {
		if b := e.buckets[(lvl-1)*2+1]; len(b) > 0 {
			if c := b[0]; victim == nil || c.ord < victim.ord {
				victim = c
			}
		}
	}
	if victim != nil {
		r.ord = victim.ord
		e.detach(victim)
		e.release(victim)
	} else {
		r.ord = e.nextOrd
		e.nextOrd++
	}
	e.place(r)
}

// absorb extends open star groups at step s — exactly the runs in bucket
// (s, open). Returns whether t was absorbed anywhere. Absorbing never
// migrates a run (cur and openness are unchanged), so the bucket is
// iterated in place.
func (e *runEngine) absorb(s int, t *stream.Tuple, out *[]*Match) bool {
	st := &e.def.Steps[s]
	if !st.Star {
		return false
	}
	b := e.buckets[s*2+1]
	if len(b) == 0 {
		return false
	}
	last := len(e.def.Steps) - 1
	any := false
	// CHRONICLE extends the oldest qualifying group, RECENT the newest,
	// UNRESTRICTED all of them.
	recent := e.def.Mode == ModeRecent
	for k := 0; k < len(b); k++ {
		r := b[k]
		if recent {
			r = b[len(b)-1-k]
		}
		g := r.m.Groups[s]
		if !gapAdmits(st, g[len(g)-1], t) ||
			!windowAdmits(e.def, r.m, s, t) || !predAdmits(e.def, r.m, s, t) {
			continue
		}
		r.m.Groups[s] = append(g, t)
		r.last = t.TS
		any = true
		if s == last {
			*out = append(*out, r.m.clone())
		}
		if e.def.Mode != ModeUnrestricted {
			break // others bind a single run
		}
	}
	return any
}

// bind attaches t at step s to qualifying runs waiting there (bucket
// (s, waiting)) or closes an open star group at s-1 (bucket (s-1, open)).
// Completed runs are emitted; CHRONICLE removes them (participants
// consumed).
func (e *runEngine) bind(s int, t *stream.Tuple, out *[]*Match) bool {
	last := len(e.def.Steps) - 1
	wait := e.buckets[s*2]
	var opened []*run
	if s > 0 {
		opened = e.buckets[(s-1)*2+1]
	}
	if len(wait) == 0 && len(opened) == 0 {
		return false
	}
	// Snapshot the ord-merged union first: the loop body migrates in-place
	// runs between buckets and appends forks, and — like the old slice
	// snapshot — runs added during the visit must not be visited.
	cands := e.mergeVisit(wait, opened)
	bound := false
	for _, r := range cands {
		if !windowAdmits(e.def, r.m, s, t) || !predAdmits(e.def, r.m, s, t) {
			continue
		}
		target := r // CHRONICLE/RECENT advance in place
		forked := false
		if e.def.Mode == ModeUnrestricted {
			target = e.fork(r)
			forked = true
		} else {
			e.detach(r)
		}
		target.m.Groups[s] = []*stream.Tuple{t}
		target.last = t.TS
		target.cur = s
		bound = true
		switch {
		case e.def.Steps[s].Star:
			if s == last {
				*out = append(*out, target.m.clone())
			}
			e.admit(target, forked)
		case s == last:
			*out = append(*out, target.m.clone())
			e.release(target) // complete: in-place already detached, forks never placed
		default:
			target.cur = s + 1
			e.admit(target, forked)
		}
		// RECENT binds the single most recent qualifying run; CHRONICLE the
		// earliest; UNRESTRICTED continues over all.
		if e.def.Mode != ModeUnrestricted {
			break
		}
	}
	return bound
}

// admit places an advanced run back into the buckets: forks are new runs
// and take a fresh maximal ordinal (the old code appended them to the run
// slice); in-place advances keep their ordinal, preserving their slot in
// the mode's visit order.
func (e *runEngine) admit(r *run, forked bool) {
	if forked {
		r.ord = e.nextOrd
		e.nextOrd++
	}
	e.place(r)
}

// fork builds the UNRESTRICTED copy-on-write copy of r: a fresh (possibly
// pooled) Match spine sharing r's group arrays, both sides capped so any
// later append reallocates instead of writing into the sibling's storage.
func (e *runEngine) fork(r *run) *run {
	f := e.newRun()
	r.m.cowInto(f.m)
	f.cur = r.cur
	return f
}

// mergeVisit snapshots the ord-merge of two sorted buckets into the visit
// scratch: ascending (oldest first) for CHRONICLE/UNRESTRICTED, descending
// (newest first) for RECENT.
func (e *runEngine) mergeVisit(a, b []*run) []*run {
	v := e.visit[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].ord < b[j].ord {
			v = append(v, a[i])
			i++
		} else {
			v = append(v, b[j])
			j++
		}
	}
	v = append(v, a[i:]...)
	v = append(v, b[j:]...)
	if e.def.Mode == ModeRecent {
		for x, y := 0, len(v)-1; x < y; x, y = x+1, y-1 {
			v[x], v[y] = v[y], v[x]
		}
	}
	e.visit = v
	return v
}

// advance evicts runs whose window can no longer be satisfied at event time
// ts: with a PRECEDING window anchored at an unbound step, a run whose
// earliest tuple has fallen out of every possible future window is dead;
// with a FOLLOWING window whose anchor is bound, the run dies once the span
// after the anchor has fully elapsed. Compaction is per bucket, so the
// ord order within each bucket is preserved.
func (e *runEngine) advance(ts stream.Timestamp) {
	if e.def.Window == nil && e.def.ExpireAfter == 0 {
		return
	}
	if r := e.cons; r != nil && (e.expired(r, ts) || e.idle(r, ts)) {
		e.cons = nil
		e.release(r)
	}
	for bi, b := range e.buckets {
		if len(b) == 0 {
			continue
		}
		kept := b[:0]
		for _, r := range b {
			if e.expired(r, ts) || e.idle(r, ts) {
				e.count--
				e.release(r)
				continue
			}
			r.pos = int32(len(kept))
			kept = append(kept, r)
		}
		for i := len(kept); i < len(b); i++ {
			b[i] = nil
		}
		e.buckets[bi] = kept
	}
}

// idle applies Def.ExpireAfter to runs that stopped making progress.
func (e *runEngine) idle(r *run, ts stream.Timestamp) bool {
	return e.def.ExpireAfter > 0 && r.last < ts.Add(-e.def.ExpireAfter)
}

func (e *runEngine) expired(r *run, ts stream.Timestamp) bool {
	w := e.def.Window
	if w == nil {
		return false
	}
	anchorBound := e.level(r) > w.Step
	if w.Following {
		if !anchorBound {
			return false
		}
		anchor := r.m.Last(w.Step)
		return ts > anchor.TS.Add(w.Span)
	}
	if anchorBound {
		return false
	}
	first := r.m.First(0)
	return first != nil && first.TS < ts.Add(-w.Span)
}

func (e *runEngine) stateSize() int {
	n := 0
	e.eachLive(func(r *run) {
		for _, g := range r.m.Groups {
			n += len(g)
		}
	})
	return n
}

func (e *runEngine) runCount() int {
	n := e.count
	if e.cons != nil {
		n++
	}
	return n
}

// eachLive visits every pending run (bucket order; for accounting only).
func (e *runEngine) eachLive(fn func(*run)) {
	if e.cons != nil {
		fn(e.cons)
	}
	for _, b := range e.buckets {
		for _, r := range b {
			fn(r)
		}
	}
}

// maskHas tests step membership in a qualifying-step bitmask — the
// constant-time replacement for the old linear stepIn scan.
func maskHas(mask uint64, s int) bool {
	return mask&(1<<uint(s)) != 0
}

// maskOf folds step indexes into a bitmask.
func maskOf(steps []int) uint64 {
	var m uint64
	for _, s := range steps {
		m |= 1 << uint(s)
	}
	return m
}
