package core

import (
	"testing"
	"time"

	"repro/internal/stream"
)

// clinicDef is Example 5: EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1].
func clinicDef(mode Mode) Def {
	return Def{
		Steps:  []Step{{Alias: "A1"}, {Alias: "A2"}, {Alias: "A3"}},
		Mode:   mode,
		Window: &WindowAnchor{Span: time.Hour, Step: 0, Following: true},
	}
}

func pushEx(t *testing.T, m *ExceptionMatcher, tu *stream.Tuple) ([]*Match, []*Exception) {
	t.Helper()
	ms, exs, err := m.Push(tu, tu.Schema.Name())
	if err != nil {
		t.Fatal(err)
	}
	return ms, exs
}

func TestClinicNormalWorkflowNoExceptions(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	var matches []*Match
	var exs []*Exception
	// (A, B, C, A, B, C, A, B, C) — the paper's normal history.
	for round := 0; round < 3; round++ {
		base := time.Duration(round) * 10 * time.Minute
		for i, s := range []string{"A1", "A2", "A3"} {
			ms, xs := pushEx(t, m, mk(s, base+time.Duration(i)*time.Minute, "staff"))
			matches = append(matches, ms...)
			exs = append(exs, xs...)
		}
	}
	if len(matches) != 3 {
		t.Errorf("completions = %d, want 3", len(matches))
	}
	if len(exs) != 0 {
		t.Errorf("unexpected exceptions: %v", exs)
	}
}

// Scenario i: wrong incoming tuple (C directly follows A).
func TestExceptionWrongOrder(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	pushEx(t, m, mk("A1", 1*time.Minute, "s"))
	_, exs := pushEx(t, m, mk("A3", 2*time.Minute, "s")) // C directly follows A
	if len(exs) != 2 {
		t.Fatalf("exceptions = %v", exs)
	}
	// The partial (A1) breaks at level 1...
	if exs[0].Reason != BreakWrongTuple || exs[0].Level != 1 {
		t.Errorf("first exception = %v", exs[0])
	}
	if exs[0].Partial == nil || exs[0].Partial.Count(0) != 1 {
		t.Errorf("partial not carried: %v", exs[0])
	}
	// ...and the C itself cannot start a sequence (level 0).
	if exs[1].Reason != BreakBadStart || exs[1].Level != 0 {
		t.Errorf("second exception = %v", exs[1])
	}
}

// Scenario ii: wrong initial event (first event is B).
func TestExceptionBadStart(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	_, exs := pushEx(t, m, mk("A2", 1*time.Minute, "s"))
	if len(exs) != 1 || exs[0].Reason != BreakBadStart || exs[0].Level != 0 {
		t.Fatalf("exceptions = %v", exs)
	}
	if exs[0].Trigger == nil {
		t.Error("bad start should carry the trigger")
	}
}

// The paper's §3.1.3 scenario: after a completed (A,B,C), "the next tuple
// is C, the incoming tuple can not start a new sequence, an exception
// event occurs."
func TestExceptionAfterCompletion(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	pushEx(t, m, mk("A1", 1*time.Minute, "s"))
	pushEx(t, m, mk("A2", 2*time.Minute, "s"))
	ms, exs := pushEx(t, m, mk("A3", 3*time.Minute, "s"))
	if len(ms) != 1 || len(exs) != 0 {
		t.Fatalf("completion wrong: %d matches, %v", len(ms), exs)
	}
	_, exs = pushEx(t, m, mk("A3", 4*time.Minute, "s"))
	if len(exs) != 1 || exs[0].Reason != BreakBadStart || exs[0].Level != 0 {
		t.Fatalf("exceptions = %v", exs)
	}
}

// Scenario iii: active expiration — the window passes without completion
// and no tuple arrives; the heartbeat surfaces the exception.
func TestExceptionActiveExpiration(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	pushEx(t, m, mk("A1", 0, "s"))
	pushEx(t, m, mk("A2", 10*time.Minute, "s"))
	if exs := m.Advance(stream.TS(30 * time.Minute)); len(exs) != 0 {
		t.Fatalf("window not yet expired: %v", exs)
	}
	exs := m.Advance(stream.TS(2 * time.Hour))
	if len(exs) != 1 {
		t.Fatalf("exceptions = %v", exs)
	}
	x := exs[0]
	if x.Reason != BreakWindowExpired || x.Level != 2 {
		t.Errorf("exception = %v", x)
	}
	if x.TS != stream.TS(time.Hour) {
		t.Errorf("expiry at %v, want the window deadline 1h0m0s", x.TS)
	}
	if x.Trigger != nil {
		t.Error("expiration has no trigger tuple")
	}
	// State reset: a fresh sequence may start.
	if m.StateSize() != 0 {
		t.Errorf("state = %d", m.StateSize())
	}
	// No duplicate firing.
	if exs := m.Advance(stream.TS(3 * time.Hour)); len(exs) != 0 {
		t.Errorf("duplicate expiration: %v", exs)
	}
}

// A completed sequence must cancel its expiration timer.
func TestCompletionCancelsTimer(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	pushEx(t, m, mk("A1", 0, "s"))
	pushEx(t, m, mk("A2", 1*time.Minute, "s"))
	pushEx(t, m, mk("A3", 2*time.Minute, "s"))
	if exs := m.Advance(stream.TS(5 * time.Hour)); len(exs) != 0 {
		t.Fatalf("timer fired after completion: %v", exs)
	}
}

// Tuples arriving after the window deadline but before any heartbeat must
// not extend the expired sequence... they surface the expiration lazily via
// Advance; here we check binding respects the window bound itself.
func TestWindowRejectsLateBinding(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	pushEx(t, m, mk("A1", 0, "s"))
	_, exs := pushEx(t, m, mk("A2", 2*time.Hour, "s")) // outside [0, 1h]
	// The late A2 is a wrong tuple for the partial (window violated), and
	// cannot start a sequence.
	if len(exs) != 2 || exs[0].Reason != BreakWrongTuple || exs[1].Reason != BreakBadStart {
		t.Fatalf("exceptions = %v", exs)
	}
}

// The paper's RECENT flavor: (A,B) then another B replaces the binding.
func TestExceptionRecentReplacement(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeRecent))
	pushEx(t, m, mk("A1", 1*time.Minute, "s"))
	pushEx(t, m, mk("A2", 2*time.Minute, "s"))
	_, exs := pushEx(t, m, mk("A2", 3*time.Minute, "s"))
	if len(exs) != 1 || exs[0].Reason != BreakWrongTuple || exs[0].Level != 2 {
		t.Fatalf("exceptions = %v", exs)
	}
	// The replacement B is now bound: a C completes (A, B', C).
	ms, exs := pushEx(t, m, mk("A3", 4*time.Minute, "s"))
	if len(ms) != 1 || len(exs) != 0 {
		t.Fatalf("completion after replacement: %d matches, %v", len(ms), exs)
	}
	if ms[0].Last(1).TS != stream.TS(3*time.Minute) {
		t.Errorf("completion should use the replacement B: %s", sig(ms[0]))
	}
}

// RECENT ignores not-yet-applicable tuples instead of breaking.
func TestExceptionRecentIgnoresFutureStep(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeRecent))
	pushEx(t, m, mk("A1", 1*time.Minute, "s"))
	_, exs := pushEx(t, m, mk("A3", 2*time.Minute, "s")) // C after A: ignored under RECENT
	if len(exs) != 0 {
		t.Fatalf("exceptions = %v", exs)
	}
	pushEx(t, m, mk("A2", 3*time.Minute, "s"))
	ms, _ := pushEx(t, m, mk("A3", 4*time.Minute, "s"))
	if len(ms) != 1 {
		t.Fatalf("completion lost")
	}
}

// CLEVEL_SEQ: the completion level is queryable between arrivals.
func TestCompletionLevel(t *testing.T) {
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	if lv := m.CompletionLevel(stream.Null); lv != 0 {
		t.Errorf("initial level = %d", lv)
	}
	pushEx(t, m, mk("A1", 1*time.Minute, "s"))
	if lv := m.CompletionLevel(stream.Null); lv != 1 {
		t.Errorf("level after A = %d", lv)
	}
	pushEx(t, m, mk("A2", 2*time.Minute, "s"))
	if lv := m.CompletionLevel(stream.Null); lv != 2 {
		t.Errorf("level after B = %d", lv)
	}
	pushEx(t, m, mk("A3", 3*time.Minute, "s"))
	if lv := m.CompletionLevel(stream.Null); lv != 0 {
		t.Errorf("level after completion = %d", lv)
	}
}

// Per-staff partitioning: violations are tracked per key.
func TestExceptionPartitioned(t *testing.T) {
	def := clinicDef(ModeConsecutive)
	for i := range def.Steps {
		def.Steps[i].Key = func(tu *stream.Tuple) stream.Value { return tu.Field("tagid") }
	}
	m := MustExceptionMatcher(def)
	pushEx(t, m, mk("A1", 1*time.Minute, "alice"))
	pushEx(t, m, mk("A1", 2*time.Minute, "bob"))
	// Alice proceeds correctly; Bob skips to C.
	_, exsA := pushEx(t, m, mk("A2", 3*time.Minute, "alice"))
	_, exsB := pushEx(t, m, mk("A3", 4*time.Minute, "bob"))
	if len(exsA) != 0 {
		t.Errorf("alice should be clean: %v", exsA)
	}
	if len(exsB) != 2 {
		t.Errorf("bob should violate: %v", exsB)
	}
	if lv := m.CompletionLevel(stream.Str("alice")); lv != 2 {
		t.Errorf("alice level = %d", lv)
	}
	if lv := m.CompletionLevel(stream.Str("bob")); lv != 0 {
		t.Errorf("bob level = %d", lv)
	}
	if lv := m.CompletionLevel(stream.Str("carol")); lv != 0 {
		t.Errorf("unknown key level = %d", lv)
	}
}

// Per-partition active expiration.
func TestExceptionPartitionedExpiry(t *testing.T) {
	def := clinicDef(ModeConsecutive)
	for i := range def.Steps {
		def.Steps[i].Key = func(tu *stream.Tuple) stream.Value { return tu.Field("tagid") }
	}
	m := MustExceptionMatcher(def)
	pushEx(t, m, mk("A1", 0, "alice"))
	pushEx(t, m, mk("A1", 30*time.Minute, "bob"))
	exs := m.Advance(stream.TS(80 * time.Minute)) // alice's 1h window passed; bob's has not
	if len(exs) != 1 || !exs[0].Partial.Key.Equal(stream.Str("alice")) {
		t.Fatalf("exceptions = %v", exs)
	}
	exs = m.Advance(stream.TS(3 * time.Hour))
	if len(exs) != 1 || !exs[0].Partial.Key.Equal(stream.Str("bob")) {
		t.Fatalf("exceptions = %v", exs)
	}
	if m.StateSize() != 0 {
		t.Errorf("state = %d", m.StateSize())
	}
}

func TestExceptionMatcherValidation(t *testing.T) {
	if _, err := NewExceptionMatcher(Def{}); err == nil {
		t.Error("empty def accepted")
	}
	if _, err := NewExceptionMatcher(Def{Steps: []Step{{Alias: "a", Star: true}}}); err == nil {
		t.Error("star step accepted")
	}
	if _, err := NewExceptionMatcher(Def{Steps: []Step{{Alias: "a"}, {Alias: "b"}}, Mode: ModeChronicle}); err == nil {
		t.Error("chronicle mode accepted")
	}
	m := MustExceptionMatcher(clinicDef(ModeConsecutive))
	if _, _, err := m.Push(mk("A1", time.Second, "s")); err == nil {
		t.Error("Push without aliases should error")
	}
	// Unknown alias: silently no-op.
	ms, exs, err := m.Push(mk("A1", time.Second, "s"), "ZZ")
	if err != nil || ms != nil || exs != nil {
		t.Error("unknown alias should be a no-op")
	}
}

func TestBreakReasonStrings(t *testing.T) {
	if BreakWrongTuple.String() != "WRONG_TUPLE" ||
		BreakBadStart.String() != "BAD_START" ||
		BreakWindowExpired.String() != "WINDOW_EXPIRED" {
		t.Error("reason names wrong")
	}
	x := &Exception{Level: 1, Reason: BreakWindowExpired, TS: stream.TS(time.Hour)}
	if x.String() == "" {
		t.Error("String should render")
	}
}
