package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/stream"
)

// Shared test scaffolding: four quality-check streams C1..C4 with the
// paper's (readerid, tagid, tagtime) schema.
var qcSchema = map[string]*stream.Schema{}

func init() {
	for _, n := range []string{"C1", "C2", "C3", "C4", "R1", "R2", "A1", "A2", "A3"} {
		qcSchema[n] = stream.MustSchema(n,
			stream.Field{Name: "readerid"},
			stream.Field{Name: "tagid"},
			stream.Field{Name: "tagtime"})
	}
}

var seq uint64

// mk builds a tuple on stream name at the given offset with a tag id, with
// a process-wide Seq for joint-history ordering (the engine normally
// assigns these).
func mk(name string, at time.Duration, tag string) *stream.Tuple {
	t := stream.MustTuple(qcSchema[name], stream.TS(at), stream.Str(name), stream.Str(tag), stream.Null)
	seq++
	t.Seq = seq
	return t
}

// seqDef builds SEQ over the given aliases (non-star) in the given mode.
func seqDef(mode Mode, aliases ...string) Def {
	steps := make([]Step, len(aliases))
	for i, a := range aliases {
		steps[i] = Step{Alias: a}
	}
	return Def{Steps: steps, Mode: mode}
}

// feed pushes the tuples (each under its schema name as alias) and collects
// all matches.
func feed(t *testing.T, m *Matcher, tuples ...*stream.Tuple) []*Match {
	t.Helper()
	var out []*Match
	for _, tu := range tuples {
		got, err := m.Push(tu, tu.Schema.Name())
		if err != nil {
			t.Fatalf("push %v: %v", tu, err)
		}
		out = append(out, got...)
	}
	return out
}

// jointHistory is the §3.1.1 worked example:
// [t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4]
func jointHistory() []*stream.Tuple {
	return []*stream.Tuple{
		mk("C1", 1*time.Second, "x"),
		mk("C1", 2*time.Second, "x"),
		mk("C2", 3*time.Second, "x"),
		mk("C3", 4*time.Second, "x"),
		mk("C3", 5*time.Second, "x"),
		mk("C2", 6*time.Second, "x"),
		mk("C4", 7*time.Second, "x"),
	}
}

// sig renders a match as "t1,t3,t4,t7" (seconds of each bound tuple).
func sig(m *Match) string {
	s := ""
	for _, g := range m.Groups {
		for _, t := range g {
			if s != "" {
				s += ","
			}
			s += fmt.Sprintf("t%d", time.Duration(t.TS)/time.Second)
		}
	}
	return s
}

func sigs(ms []*Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = sig(m)
	}
	return out
}

func wantSigs(t *testing.T, got []*Match, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d matches %v, want %d %v", len(got), sigs(got), len(want), want)
	}
	gs := sigs(got)
	for _, w := range want {
		found := false
		for _, g := range gs {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing match %s in %v", w, gs)
		}
	}
}

// --- The paper's §3.1.1 mode walkthrough, pinned exactly. -----------------

func TestPaperWalkthroughUnrestricted(t *testing.T) {
	m := MustMatcher(seqDef(ModeUnrestricted, "C1", "C2", "C3", "C4"))
	got := feed(t, m, jointHistory()...)
	wantSigs(t, got,
		"t1,t3,t4,t7",
		"t1,t3,t5,t7",
		"t2,t3,t4,t7",
		"t2,t3,t5,t7")
}

func TestPaperWalkthroughRecent(t *testing.T) {
	m := MustMatcher(seqDef(ModeRecent, "C1", "C2", "C3", "C4"))
	got := feed(t, m, jointHistory()...)
	wantSigs(t, got, "t2,t3,t5,t7")
}

func TestPaperWalkthroughChronicle(t *testing.T) {
	m := MustMatcher(seqDef(ModeChronicle, "C1", "C2", "C3", "C4"))
	got := feed(t, m, jointHistory()...)
	wantSigs(t, got, "t1,t3,t4,t7")
}

func TestPaperWalkthroughConsecutive(t *testing.T) {
	m := MustMatcher(seqDef(ModeConsecutive, "C1", "C2", "C3", "C4"))
	got := feed(t, m, jointHistory()...)
	wantSigs(t, got) // "It will not return true for any sequence in this case."
}

func TestConsecutivePositive(t *testing.T) {
	m := MustMatcher(seqDef(ModeConsecutive, "C1", "C2", "C3", "C4"))
	got := feed(t, m,
		mk("C1", 1*time.Second, "x"),
		mk("C2", 2*time.Second, "x"),
		mk("C3", 3*time.Second, "x"),
		mk("C4", 4*time.Second, "x"),
		// Second full run: state must have reset cleanly.
		mk("C1", 5*time.Second, "x"),
		mk("C2", 6*time.Second, "x"),
		mk("C3", 7*time.Second, "x"),
		mk("C4", 8*time.Second, "x"),
	)
	wantSigs(t, got, "t1,t2,t3,t4", "t5,t6,t7,t8")
}

func TestChronicleConsumesParticipants(t *testing.T) {
	// After (t1,t3,t4,t7) matches, a second C4 can only use leftovers
	// (t2:C1, t6:C2, and no C3 remains before it except t5).
	m := MustMatcher(seqDef(ModeChronicle, "C1", "C2", "C3", "C4"))
	h := jointHistory()
	got := feed(t, m, h...)
	wantSigs(t, got, "t1,t3,t4,t7")
	got2 := feed(t, m, mk("C3", 8*time.Second, "x"), mk("C4", 9*time.Second, "x"))
	// Leftovers: C1:t2, C2:t6, C3:(t5, t8): earliest C3 after t6 is t8.
	wantSigs(t, got2, "t2,t6,t8,t9")
}

func TestRecentReplacement(t *testing.T) {
	// A newer C1 replaces the older as candidate; the chain follows it.
	m := MustMatcher(seqDef(ModeRecent, "C1", "C2"))
	got := feed(t, m,
		mk("C1", 1*time.Second, "x"),
		mk("C1", 2*time.Second, "x"),
		mk("C2", 3*time.Second, "x"),
		mk("C2", 4*time.Second, "x"), // tuples are reusable under RECENT
	)
	wantSigs(t, got, "t2,t3", "t2,t4")
}

func TestUnrestrictedCombinationCount(t *testing.T) {
	// k C1-tuples and k C2-tuples before one C3 yield k*k matches.
	const k = 5
	m := MustMatcher(seqDef(ModeUnrestricted, "C1", "C2", "C3"))
	var tuples []*stream.Tuple
	for i := 0; i < k; i++ {
		tuples = append(tuples, mk("C1", time.Duration(i)*time.Second, "x"))
	}
	for i := 0; i < k; i++ {
		tuples = append(tuples, mk("C2", time.Duration(10+i)*time.Second, "x"))
	}
	tuples = append(tuples, mk("C3", 30*time.Second, "x"))
	got := feed(t, m, tuples...)
	if len(got) != k*k {
		t.Fatalf("got %d matches, want %d", len(got), k*k)
	}
}

// --- Windows on SEQ --------------------------------------------------------

func TestSeqPrecedingWindow(t *testing.T) {
	// Sequence must finish within 5s of the final tuple: the old C1 at t1
	// is outside [t10-5, t10].
	def := seqDef(ModeUnrestricted, "C1", "C2")
	def.Window = &WindowAnchor{Span: 5 * time.Second, Step: 1}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("C1", 1*time.Second, "x"),
		mk("C1", 7*time.Second, "x"),
		mk("C2", 10*time.Second, "x"),
	)
	wantSigs(t, got, "t7,t10")
}

func TestSeqPrecedingWindowEvictsState(t *testing.T) {
	def := seqDef(ModeUnrestricted, "C1", "C2")
	def.Window = &WindowAnchor{Span: 2 * time.Second, Step: 1}
	m := MustMatcher(def)
	for i := 0; i < 100; i++ {
		feed(t, m, mk("C1", time.Duration(i)*time.Second, "x"))
	}
	if s := m.StateSize(); s > 4 {
		t.Fatalf("windowed state not bounded: %d tuples retained", s)
	}
	// Heartbeat-driven eviction too.
	m.Advance(stream.TS(500 * time.Second))
	if s := m.StateSize(); s != 0 {
		t.Fatalf("advance did not evict: %d", s)
	}
}

func TestSeqFollowingWindow(t *testing.T) {
	// OVER [3 SECONDS FOLLOWING C1]: whole sequence within 3s of C1.
	def := seqDef(ModeRecent, "C1", "C2", "C3")
	def.Window = &WindowAnchor{Span: 3 * time.Second, Step: 0, Following: true}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("C1", 1*time.Second, "x"),
		mk("C2", 2*time.Second, "x"),
		mk("C3", 10*time.Second, "x"), // too late
	)
	wantSigs(t, got)
	got = feed(t, m,
		mk("C1", 20*time.Second, "x"),
		mk("C2", 21*time.Second, "x"),
		mk("C3", 22*time.Second, "x"),
	)
	wantSigs(t, got, "t20,t21,t22")
}

func TestSeqFollowingWindowMidAnchor(t *testing.T) {
	// The paper's point: FOLLOWING can anchor mid-sequence, which PRECEDING
	// cannot express. OVER [2 SECONDS FOLLOWING C2]: C3 within 2s of C2;
	// C1 arbitrarily earlier.
	def := seqDef(ModeRecent, "C1", "C2", "C3")
	def.Window = &WindowAnchor{Span: 2 * time.Second, Step: 1, Following: true}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("C1", 1*time.Second, "x"), // far before C2 — fine
		mk("C2", 60*time.Second, "x"),
		mk("C3", 61*time.Second, "x"),
	)
	wantSigs(t, got, "t1,t60,t61")
	got = feed(t, m,
		mk("C1", 70*time.Second, "x"),
		mk("C2", 71*time.Second, "x"),
		mk("C3", 80*time.Second, "x"), // > 2s after C2
	)
	wantSigs(t, got)
}

// --- Partitioned matching (C1.tagid = C2.tagid = ...) ----------------------

func TestPartitionedByTag(t *testing.T) {
	def := seqDef(ModeChronicle, "C1", "C2")
	for i := range def.Steps {
		def.Steps[i].Key = func(tu *stream.Tuple) stream.Value { return tu.Field("tagid") }
	}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("C1", 1*time.Second, "a"),
		mk("C1", 2*time.Second, "b"),
		mk("C2", 3*time.Second, "b"), // pairs with t2 only
		mk("C2", 4*time.Second, "a"), // pairs with t1 only
	)
	wantSigs(t, got, "t2,t3", "t1,t4")
	if m.Partitions() != 2 {
		t.Errorf("partitions = %d", m.Partitions())
	}
	for _, g := range got {
		if g.Key.IsNull() {
			t.Error("match should carry its partition key")
		}
	}
}

func TestStepFilter(t *testing.T) {
	def := seqDef(ModeRecent, "C1", "C2")
	def.Steps[0].Filter = func(tu *stream.Tuple) bool { return tu.Field("tagid").String() == "keep" }
	m := MustMatcher(def)
	got := feed(t, m,
		mk("C1", 1*time.Second, "drop"),
		mk("C2", 2*time.Second, "x"),
	)
	wantSigs(t, got)
	got = feed(t, m,
		mk("C1", 3*time.Second, "keep"),
		mk("C2", 4*time.Second, "x"),
	)
	wantSigs(t, got, "t3,t4")
}

func TestCrossStepPred(t *testing.T) {
	// Residual predicate: C2 must carry the same tag as C1 (unpartitioned
	// formulation).
	def := seqDef(ModeUnrestricted, "C1", "C2")
	def.Pred = func(partial *Match, step int, tu *stream.Tuple) bool {
		if step != 1 {
			return true
		}
		return partial.Last(0).Field("tagid").Equal(tu.Field("tagid"))
	}
	m := MustMatcher(def)
	got := feed(t, m,
		mk("C1", 1*time.Second, "a"),
		mk("C1", 2*time.Second, "b"),
		mk("C2", 3*time.Second, "a"),
	)
	wantSigs(t, got, "t1,t3")
}

// --- Same stream aliased at several steps ----------------------------------

func TestSelfSequence(t *testing.T) {
	// SEQ(A, A) over one stream: consecutive pairs, RECENT mode.
	def := Def{Steps: []Step{{Alias: "first"}, {Alias: "second"}}, Mode: ModeRecent}
	m := MustMatcher(def)
	var got []*Match
	for i := 1; i <= 3; i++ {
		tu := mk("C1", time.Duration(i)*time.Second, "x")
		ms, err := m.Push(tu, "first", "second")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ms...)
	}
	// t2 pairs with t1; t3 pairs with t2 (most recent).
	wantSigs(t, got, "t1,t2", "t2,t3")
}

// --- Validation ------------------------------------------------------------

func TestDefValidate(t *testing.T) {
	bad := []Def{
		{},
		{Steps: []Step{{Alias: ""}}},
		{Steps: []Step{{Alias: "a"}, {Alias: "a"}}},
		{Steps: []Step{{Alias: "a", MaxGap: -1, Star: true}}},
		{Steps: []Step{{Alias: "a", MaxGap: time.Second}}}, // gap without star
		{Steps: []Step{{Alias: "a", Key: func(*stream.Tuple) stream.Value { return stream.Null }}, {Alias: "b"}}},
		{Steps: []Step{{Alias: "a"}}, Window: &WindowAnchor{Span: 0}},
		{Steps: []Step{{Alias: "a"}}, Window: &WindowAnchor{Span: time.Second, Step: 5}},
	}
	for i, d := range bad {
		if _, err := NewMatcher(d); err == nil {
			t.Errorf("case %d: invalid def accepted", i)
		}
	}
	if _, err := m0(); err != nil {
		t.Errorf("valid def rejected: %v", err)
	}
	if _, err := (&Matcher{}).Push(mk("C1", time.Second, "x")); err == nil {
		t.Error("Push without aliases should error")
	}
}

func m0() (*Matcher, error) {
	return NewMatcher(seqDef(ModeRecent, "C1", "C2"))
}

func TestModeNames(t *testing.T) {
	for name, mode := range map[string]Mode{
		"UNRESTRICTED": ModeUnrestricted, "RECENT": ModeRecent,
		"CHRONICLE": ModeChronicle, "CONSECUTIVE": ModeConsecutive,
	} {
		got, ok := ModeFromName(name)
		if !ok || got != mode {
			t.Errorf("ModeFromName(%q) = %v, %v", name, got, ok)
		}
		if mode.String() != name {
			t.Errorf("%v.String() = %q", mode, mode.String())
		}
	}
	if _, ok := ModeFromName("recent"); ok {
		t.Error("mode names are upper-case keywords")
	}
}

func TestMatchAccessors(t *testing.T) {
	a, b := mk("C1", 1*time.Second, "x"), mk("C1", 2*time.Second, "y")
	m := &Match{Groups: [][]*stream.Tuple{{a, b}, nil}}
	if m.First(0) != a || m.Last(0) != b || m.Count(0) != 2 {
		t.Error("star aggregates wrong")
	}
	if m.First(1) != nil || m.Last(1) != nil || m.Count(1) != 0 {
		t.Error("empty group accessors wrong")
	}
	if m.First(9) != nil || m.Count(-1) != 0 {
		t.Error("out-of-range accessors wrong")
	}
	if m.End() != stream.TS(2*time.Second) {
		t.Errorf("End = %v", m.End())
	}
	if s := m.String(); s != "(1s:C1, 2s:C1)" {
		t.Errorf("String = %q", s)
	}
}
