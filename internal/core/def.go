// Package core implements the paper's primary contribution: the ESL-EV
// temporal event operators. It provides SEQ over multiple streams, star
// sequences (repeating steps with longest-match semantics, FIRST/LAST/COUNT
// star aggregates and the `previous` inter-arrival constraint), the four
// Tuple Pairing Modes (UNRESTRICTED, RECENT, CHRONICLE, CONSECUTIVE),
// sliding windows anchored on any step (PRECEDING and FOLLOWING), and the
// EXCEPTION_SEQ / CLEVEL_SEQ violation detectors with Active Expiration.
//
// The language layer (internal/esl) compiles WHERE-clause SEQ predicates
// into the Def/Matcher types here; the matchers are also directly usable as
// a Go complex-event-processing API.
package core

import (
	"fmt"
	"time"

	"repro/internal/stream"
)

// Mode is a Tuple Pairing Mode: the event-consumption policy that dictates
// how tuple history is kept and which combinations form events (§3.1.1).
type Mode uint8

// The four pairing modes of the paper. ModeUnrestricted is the default.
const (
	// ModeUnrestricted generates every combination of qualifying tuples in
	// the correct time order.
	ModeUnrestricted Mode = iota
	// ModeRecent matches an incoming tuple with the most recent qualifying
	// tuple on each other stream; earlier candidates are replaced by later
	// ones, bounding history to one chain per prefix.
	ModeRecent
	// ModeChronicle matches with the earliest qualifying tuples; each tuple
	// participates in at most one event and is consumed on match.
	ModeChronicle
	// ModeConsecutive only matches tuples that are adjacent on the joint
	// tuple history (the timestamp-ordered union of all participating
	// streams); any interleaved tuple breaks the pattern.
	ModeConsecutive
)

// String returns the mode's ESL-EV spelling.
func (m Mode) String() string {
	switch m {
	case ModeUnrestricted:
		return "UNRESTRICTED"
	case ModeRecent:
		return "RECENT"
	case ModeChronicle:
		return "CHRONICLE"
	case ModeConsecutive:
		return "CONSECUTIVE"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ModeFromName parses a pairing-mode name (case-sensitive, upper case, as
// written in queries).
func ModeFromName(name string) (Mode, bool) {
	switch name {
	case "UNRESTRICTED":
		return ModeUnrestricted, true
	case "RECENT":
		return ModeRecent, true
	case "CHRONICLE":
		return ModeChronicle, true
	case "CONSECUTIVE":
		return ModeConsecutive, true
	default:
		return ModeUnrestricted, false
	}
}

// Step is one position of a SEQ pattern.
type Step struct {
	// Alias names the step as written in the query (the FROM alias). It is
	// how arriving tuples are routed: the engine tags each tuple with the
	// alias(es) of the stream it arrived on.
	Alias string
	// Star marks a repeating step (E*). A star step matches a maximal run
	// of one or more consecutive tuples (longest-match, per §3.1.2).
	Star bool
	// Filter, when non-nil, is the per-tuple qualifying predicate for this
	// step (attribute conditions pushed down from the WHERE clause). A
	// tuple failing the filter does not bind to the step.
	Filter func(t *stream.Tuple) bool
	// MaxGap bounds the inter-arrival gap between consecutive tuples of a
	// star run — the paper's `R1.tagtime - R1.previous.tagtime <= g`
	// constraint. Zero means unconstrained. Only meaningful when Star.
	MaxGap time.Duration
	// Key, when non-nil, extracts this step's partition key. When every
	// step has a Key, matching state is partitioned: tuples only pair with
	// tuples of equal key (the planner derives this from equality
	// predicates like C1.tagid = C2.tagid).
	Key func(t *stream.Tuple) stream.Value
}

// WindowAnchor applies a sliding window to the operator, measured from the
// tuple bound at the anchor step (§3.1.1 "Sliding Windows on SEQ" and the
// FOLLOWING windows of §3.1.3).
type WindowAnchor struct {
	Span time.Duration
	// Step is the index of the anchoring step.
	Step int
	// Following selects [anchor, anchor+Span] (FOLLOWING); otherwise the
	// window is [anchor-Span, anchor] (PRECEDING).
	Following bool
}

// Covers reports whether a tuple at ts is admissible given the anchor bound
// at anchorTS.
func (w *WindowAnchor) Covers(anchorTS, ts stream.Timestamp) bool {
	if w == nil {
		return true
	}
	if w.Following {
		return ts >= anchorTS && ts <= anchorTS.Add(w.Span)
	}
	return ts >= anchorTS.Add(-w.Span) && ts <= anchorTS
}

// Def declares a complete SEQ pattern.
type Def struct {
	Steps  []Step
	Mode   Mode
	Window *WindowAnchor
	// Pred, when non-nil, is a cross-step predicate consulted whenever a
	// tuple is about to bind to a step, given the tuples already bound. It
	// carries the residual WHERE conditions that reference several steps
	// (e.g. R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS, evaluated when R2
	// binds). partial holds groups for steps < step; t is the candidate.
	Pred func(partial *Match, step int, t *stream.Tuple) bool
	// ExpireAfter, when positive, prunes pending partial matches that have
	// not bound a new tuple for this long. It bounds state for patterns
	// whose timing constraints live in Pred (where the matcher cannot
	// deduce an eviction horizon itself), such as Example 7's
	// "R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS".
	ExpireAfter time.Duration
}

// Validate checks structural soundness of the pattern.
func (d *Def) Validate() error {
	if len(d.Steps) == 0 {
		return fmt.Errorf("core: pattern needs at least one step")
	}
	if len(d.Steps) > 64 {
		// Qualifying steps travel as a uint64 bitmask through push/pushBatch.
		return fmt.Errorf("core: pattern has %d steps; at most 64 are supported", len(d.Steps))
	}
	seen := make(map[string]bool, len(d.Steps))
	keyed := 0
	for i, s := range d.Steps {
		if s.Alias == "" {
			return fmt.Errorf("core: step %d has empty alias", i)
		}
		if seen[s.Alias] {
			return fmt.Errorf("core: duplicate step alias %q", s.Alias)
		}
		seen[s.Alias] = true
		if s.MaxGap < 0 {
			return fmt.Errorf("core: step %d has negative MaxGap", i)
		}
		if s.MaxGap > 0 && !s.Star {
			return fmt.Errorf("core: step %d: MaxGap only applies to star steps", i)
		}
		if s.Key != nil {
			keyed++
		}
	}
	if keyed != 0 && keyed != len(d.Steps) {
		return fmt.Errorf("core: partition keys must be set on all steps or none")
	}
	if d.Window != nil {
		if d.Window.Span <= 0 {
			return fmt.Errorf("core: window span must be positive")
		}
		if d.Window.Step < 0 || d.Window.Step >= len(d.Steps) {
			return fmt.Errorf("core: window anchor step %d out of range", d.Window.Step)
		}
	}
	return nil
}

// Partitioned reports whether matching state is split by key.
func (d *Def) Partitioned() bool { return len(d.Steps) > 0 && d.Steps[0].Key != nil }

// StepIndex returns the index of the step with the given alias.
func (d *Def) StepIndex(alias string) (int, bool) {
	for i, s := range d.Steps {
		if s.Alias == alias {
			return i, true
		}
	}
	return 0, false
}

// Match is one detected event: for each step, the group of tuples bound to
// it (singletons for non-star steps).
type Match struct {
	// Groups has one entry per pattern step, in step order. Group slices
	// are owned by the Match.
	Groups [][]*stream.Tuple
	// Key is the partition key the match was formed under (Null when the
	// pattern is unpartitioned).
	Key stream.Value
}

// First returns the first tuple bound to step i — the FIRST(E*) aggregate.
func (m *Match) First(i int) *stream.Tuple {
	if i < 0 || i >= len(m.Groups) || len(m.Groups[i]) == 0 {
		return nil
	}
	return m.Groups[i][0]
}

// Last returns the last tuple bound to step i — the LAST(E*) aggregate.
func (m *Match) Last(i int) *stream.Tuple {
	if i < 0 || i >= len(m.Groups) || len(m.Groups[i]) == 0 {
		return nil
	}
	g := m.Groups[i]
	return g[len(g)-1]
}

// Count returns the number of tuples bound to step i — the COUNT(E*)
// aggregate.
func (m *Match) Count(i int) int {
	if i < 0 || i >= len(m.Groups) {
		return 0
	}
	return len(m.Groups[i])
}

// End returns the event time of the match: the timestamp of the last bound
// tuple.
func (m *Match) End() stream.Timestamp {
	for i := len(m.Groups) - 1; i >= 0; i-- {
		if g := m.Groups[i]; len(g) > 0 {
			return g[len(g)-1].TS
		}
	}
	return stream.MinTimestamp
}

// Prov returns the match's provenance hash: the XOR fold of every bound
// tuple's content hash. XOR is order-independent, so two replicas that bind
// the same tuples — in different arrival orders, through different run-store
// paths — derive the same identity. The speculation layer uses it as the
// stable MatchID component that lets a retraction name exactly the rows it
// cancels; the run stores retain the bound tuples themselves (Groups), so
// provenance survives copy-on-write forks and snapshot round-trips for
// free.
func (m *Match) Prov() uint64 {
	var h uint64
	for _, g := range m.Groups {
		for _, t := range g {
			h ^= stream.ContentHash(t)
		}
	}
	return h
}

// clone deep-copies the group structure (tuples shared). Emitted matches
// always go through clone, so the public contract — "Group slices are owned
// by the Match" — holds even when the engine's internal runs share group
// arrays copy-on-write.
func (m *Match) clone() *Match {
	c := &Match{Groups: make([][]*stream.Tuple, len(m.Groups)), Key: m.Key}
	for i, g := range m.Groups {
		c.Groups[i] = append([]*stream.Tuple(nil), g...)
	}
	return c
}

// cowInto copies m's bound groups into dst as a copy-on-write fork: the
// group arrays are shared between the two matches, with both sides capped
// so that any later append reallocates instead of writing into the
// sibling's storage. Neither side may mutate group contents in place.
func (m *Match) cowInto(dst *Match) {
	for i, g := range m.Groups {
		g = g[:len(g):len(g)]
		m.Groups[i] = g
		dst.Groups[i] = g
	}
	dst.Key = m.Key
}

// cowClone is cowInto with a fresh destination spine.
func (m *Match) cowClone() *Match {
	c := &Match{Groups: make([][]*stream.Tuple, len(m.Groups))}
	m.cowInto(c)
	return c
}

// String renders the match in the paper's (t1:C1, t3:C2, ...) notation.
func (m *Match) String() string {
	s := "("
	first := true
	for _, g := range m.Groups {
		for _, t := range g {
			if !first {
				s += ", "
			}
			first = false
			s += fmt.Sprintf("%s:%s", t.TS, t.Schema.Name())
		}
	}
	return s + ")"
}
