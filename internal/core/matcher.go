package core

import (
	"fmt"

	"repro/internal/stream"
)

// engine is the mode-specific matching state for one partition.
type engine interface {
	// push offers a tuple that qualifies for the given step indexes
	// (filters already applied; descending processing order is the
	// engine's responsibility) and returns completed matches.
	push(steps []int, t *stream.Tuple) []*Match
	// advance moves event time forward (heartbeats), evicting state whose
	// window can no longer be satisfied.
	advance(ts stream.Timestamp)
	// stateSize counts retained tuples, for benchmarks and tests of the
	// paper's state-bounding claims.
	stateSize() int
}

// Matcher evaluates one SEQ pattern incrementally. Feed it the merged joint
// tuple history via Push (tagging each tuple with the alias(es) it arrives
// under) and heartbeats via Advance; it returns completed matches. When the
// pattern is partitioned (Step.Key set), state is kept per key.
type Matcher struct {
	def    Def
	single engine
	parts  map[uint64][]*partition // key hash -> partitions (collision chain)
	nparts int
}

type partition struct {
	key stream.Value
	eng engine
}

// NewMatcher validates the pattern and builds a matcher.
func NewMatcher(def Def) (*Matcher, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	m := &Matcher{def: def}
	if def.Partitioned() {
		m.parts = make(map[uint64][]*partition)
	} else {
		m.single = newEngine(&m.def, stream.Null)
	}
	return m, nil
}

// MustMatcher is NewMatcher that panics on error, for tests and examples.
func MustMatcher(def Def) *Matcher {
	m, err := NewMatcher(def)
	if err != nil {
		panic(err)
	}
	return m
}

// newEngine picks the implementation: star patterns and CONSECUTIVE mode
// need the run engine; plain sequences in the other modes use the cheaper
// chain engine.
func newEngine(def *Def, key stream.Value) engine {
	if def.Mode == ModeConsecutive || hasStar(def) {
		return newRunEngine(def, key)
	}
	return newChainEngine(def, key)
}

func hasStar(def *Def) bool {
	for _, s := range def.Steps {
		if s.Star {
			return true
		}
	}
	return false
}

// Def returns the pattern the matcher was built with.
func (m *Matcher) Def() *Def { return &m.def }

// Push offers one tuple of the joint history under the given aliases (the
// aliases of the pattern steps whose source stream produced the tuple; a
// stream aliased twice yields both). It returns completed matches in
// deterministic order.
func (m *Matcher) Push(t *stream.Tuple, aliases ...string) ([]*Match, error) {
	if len(aliases) == 0 {
		return nil, fmt.Errorf("core: Push without aliases")
	}
	// Resolve aliases to qualifying step indexes (descending for correct
	// same-arrival processing: a tuple acting as a later step must see
	// pre-arrival state of earlier steps).
	var steps []int
	for i := len(m.def.Steps) - 1; i >= 0; i-- {
		st := &m.def.Steps[i]
		for _, a := range aliases {
			if st.Alias != a {
				continue
			}
			if st.Filter != nil && !st.Filter(t) {
				continue
			}
			steps = append(steps, i)
		}
	}
	if len(steps) == 0 {
		return nil, nil
	}
	if !m.def.Partitioned() {
		return m.single.push(steps, t), nil
	}
	// Partitioned: group qualifying steps by their extracted key.
	var out []*Match
	remaining := steps
	for len(remaining) > 0 {
		key := m.def.Steps[remaining[0]].Key(t)
		var same, rest []int
		for _, si := range remaining {
			if m.def.Steps[si].Key(t).Equal(key) {
				same = append(same, si)
			} else {
				rest = append(rest, si)
			}
		}
		remaining = rest
		out = append(out, m.partitionFor(key).eng.push(same, t)...)
	}
	return out, nil
}

func (m *Matcher) partitionFor(key stream.Value) *partition {
	h := key.Hash()
	for _, p := range m.parts[h] {
		if p.key.Equal(key) {
			return p
		}
	}
	p := &partition{key: key, eng: newEngine(&m.def, key)}
	m.parts[h] = append(m.parts[h], p)
	m.nparts++
	return p
}

// Advance moves event time to ts (from a heartbeat or a non-participating
// tuple), evicting expired matching state.
func (m *Matcher) Advance(ts stream.Timestamp) {
	if m.single != nil {
		m.single.advance(ts)
		return
	}
	for _, chain := range m.parts {
		for _, p := range chain {
			p.eng.advance(ts)
		}
	}
}

// StateSize reports the number of tuples currently retained across all
// partitions — the measure behind the paper's claim that pairing modes and
// windows allow aggressive history purging.
func (m *Matcher) StateSize() int {
	if m.single != nil {
		return m.single.stateSize()
	}
	n := 0
	for _, chain := range m.parts {
		for _, p := range chain {
			n += p.eng.stateSize()
		}
	}
	return n
}

// Partitions reports how many distinct keys have live state.
func (m *Matcher) Partitions() int { return m.nparts }

// windowAdmits checks the sliding window when binding t at step, given the
// already-bound partial. PRECEDING windows anchored at step a constrain the
// earlier steps once the anchor binds; FOLLOWING windows constrain the
// later steps as they bind.
func windowAdmits(def *Def, partial *Match, step int, t *stream.Tuple) bool {
	w := def.Window
	if w == nil {
		return true
	}
	if w.Following {
		if step > w.Step {
			anchor := partial.Last(w.Step)
			if anchor == nil {
				return true // anchor unbound (shouldn't happen: steps bind in order)
			}
			return t.TS <= anchor.TS.Add(w.Span)
		}
		return true
	}
	// PRECEDING: when the anchor itself binds, every earlier tuple must be
	// within span before it.
	if step == w.Step {
		for i := 0; i < step; i++ {
			if f := partial.First(i); f != nil && f.TS < t.TS.Add(-w.Span) {
				return false
			}
		}
		// Star tuples already bound at the anchor step (t extends the
		// anchor's own star group) must also be covered.
		if f := partial.First(step); f != nil && f.TS < t.TS.Add(-w.Span) {
			return false
		}
	}
	return true
}

// predAdmits applies the cross-step residual predicate, if any.
func predAdmits(def *Def, partial *Match, step int, t *stream.Tuple) bool {
	return def.Pred == nil || def.Pred(partial, step, t)
}

// gapAdmits applies the star inter-arrival constraint when t would extend
// an existing star group whose last element is prev.
func gapAdmits(st *Step, prev, t *stream.Tuple) bool {
	return st.MaxGap == 0 || t.TS.Sub(prev.TS) <= st.MaxGap
}
