package core

import (
	"fmt"
	"sort"

	"repro/internal/snapshot"
	"repro/internal/stream"
)

// engine is the mode-specific matching state for one partition.
type engine interface {
	// push offers a tuple that qualifies for the given step indexes
	// (filters already applied; descending processing order is the
	// engine's responsibility) and returns completed matches. mask is the
	// same step set as a bitmask (bit i set ⇔ i ∈ steps), precomputed so
	// engines test membership in constant time. An error reports a broken
	// ordering invariant (window.ErrOutOfOrder) — an upstream engine bug,
	// never a data condition.
	push(steps []int, mask uint64, t *stream.Tuple) ([]*Match, error)
	// advance moves event time forward (heartbeats), evicting state whose
	// window can no longer be satisfied.
	advance(ts stream.Timestamp)
	// stateSize counts retained tuples, for benchmarks and tests of the
	// paper's state-bounding claims.
	stateSize() int
	// runCount gauges pending partial matches (runs or RECENT chains).
	runCount() int
	// save/load serialize the engine's mutable state (see snapshot.go).
	save(enc *snapshot.Encoder)
	load(dec *snapshot.Decoder) error
}

// Matcher evaluates one SEQ pattern incrementally. Feed it the merged joint
// tuple history via Push (tagging each tuple with the alias(es) it arrives
// under) and heartbeats via Advance; it returns completed matches. When the
// pattern is partitioned (Step.Key set), state is kept per key.
type Matcher struct {
	def    Def
	single engine
	parts  map[uint64][]*partition // key hash -> partitions (collision chain)
	nparts int

	// clock is the event time the matcher has observed — pushed tuples and
	// Advance calls alike. Engines evict lazily against the clock as it
	// stood BEFORE the tuple being pushed: that reproduces, exactly, the
	// serial interleaving "push tuple, then advance to its timestamp" that
	// per-item ingestion performs, no matter how pushes are batched. The
	// ordering is observable: with star steps, eviction decides whether a
	// step-0 tuple is absorbed into a stale open run or starts a fresh one.
	clock stream.Timestamp

	// Scratch storage reused across Push/PushBatch calls so the steady-state
	// matching path allocates nothing. A Matcher is not safe for concurrent
	// use (the engine serializes access), so plain fields suffice.
	stepScratch []int
	remScratch  []int
	sameScratch []int
	stepArena   []int
	touched     []*partition
	emitScratch []batchEmit
}

type partition struct {
	key stream.Value
	eng engine
	// pending queues this partition's share of a PushBatch run; ord
	// reconstructs the serial emission order across partitions.
	pending []pendingPush
}

// pendingPush is one deferred engine.push within a PushBatch: the tuple, its
// qualifying step indexes (a range into the batch's step arena), and the
// global visit order the serial path would have used.
type pendingPush struct {
	ord    int
	index  int    // position of the tuple in the pushed run
	lo, hi int    // steps arena range
	mask   uint64 // the same step range as a bitmask
}

// batchEmit collects the matches of one deferred push for re-sorting.
type batchEmit struct {
	ord     int
	index   int
	matches []*Match
}

// NewMatcher validates the pattern and builds a matcher.
func NewMatcher(def Def) (*Matcher, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	m := &Matcher{def: def}
	if def.Partitioned() {
		m.parts = make(map[uint64][]*partition)
	} else {
		m.single = newEngine(&m.def, stream.Null)
	}
	return m, nil
}

// MustMatcher is NewMatcher that panics on error, for tests and examples.
func MustMatcher(def Def) *Matcher {
	m, err := NewMatcher(def)
	if err != nil {
		panic(err)
	}
	return m
}

// newEngine picks the implementation: star patterns and CONSECUTIVE mode
// need the run engine; plain sequences in the other modes use the cheaper
// chain engine.
func newEngine(def *Def, key stream.Value) engine {
	if def.Mode == ModeConsecutive || hasStar(def) {
		return newRunEngine(def, key)
	}
	return newChainEngine(def, key)
}

func hasStar(def *Def) bool {
	for _, s := range def.Steps {
		if s.Star {
			return true
		}
	}
	return false
}

// Def returns the pattern the matcher was built with.
func (m *Matcher) Def() *Def { return &m.def }

// Push offers one tuple of the joint history under the given aliases (the
// aliases of the pattern steps whose source stream produced the tuple; a
// stream aliased twice yields both). It returns completed matches in
// deterministic order.
func (m *Matcher) Push(t *stream.Tuple, aliases ...string) ([]*Match, error) {
	if len(aliases) == 0 {
		return nil, fmt.Errorf("core: Push without aliases")
	}
	// Resolve aliases to qualifying step indexes (descending for correct
	// same-arrival processing: a tuple acting as a later step must see
	// pre-arrival state of earlier steps).
	steps := m.stepScratch[:0]
	var mask uint64
	for i := len(m.def.Steps) - 1; i >= 0; i-- {
		st := &m.def.Steps[i]
		for _, a := range aliases {
			if st.Alias != a {
				continue
			}
			if st.Filter != nil && !st.Filter(t) {
				continue
			}
			steps = append(steps, i)
			mask |= 1 << uint(i)
		}
	}
	m.stepScratch = steps
	return m.pushSteps(steps, mask, t)
}

// Resolved is a precomputed alias→step resolution: the candidate step
// indexes, in descending order, for tuples arriving under a fixed alias
// set. Per-tuple step filters still apply at push time. Callers that route
// a stream to the matcher under a stable alias set (the engine's readers)
// resolve once and skip the per-push alias scan.
type Resolved struct {
	cands []int
	// mask is the candidate set as a step bitmask, before per-tuple
	// filtering (bit i set ⇔ i ∈ cands).
	mask uint64
}

// Resolve precomputes the candidate steps for an alias set.
func (m *Matcher) Resolve(aliases ...string) *Resolved {
	r := &Resolved{}
	for i := len(m.def.Steps) - 1; i >= 0; i-- {
		st := &m.def.Steps[i]
		for _, a := range aliases {
			if st.Alias == a {
				r.cands = append(r.cands, i)
				r.mask |= 1 << uint(i)
			}
		}
	}
	return r
}

// Steps reports how many candidate steps the resolution covers.
func (r *Resolved) Steps() int { return len(r.cands) }

// PushResolved is Push with the alias resolution precomputed; the
// steady-state path allocates nothing.
func (m *Matcher) PushResolved(r *Resolved, t *stream.Tuple) ([]*Match, error) {
	steps, mask := m.filterSteps(r, t, m.stepScratch[:0])
	m.stepScratch = steps
	return m.pushSteps(steps, mask, t)
}

// filterSteps applies the per-tuple step filters to a resolution, appending
// the qualifying indexes to dst and folding them into a bitmask.
func (m *Matcher) filterSteps(r *Resolved, t *stream.Tuple, dst []int) ([]int, uint64) {
	var mask uint64
	for _, i := range r.cands {
		st := &m.def.Steps[i]
		if st.Filter != nil && !st.Filter(t) {
			continue
		}
		dst = append(dst, i)
		mask |= 1 << uint(i)
	}
	return dst, mask
}

// pushSteps feeds one tuple with its qualifying steps to the right
// partition engines, reusing scratch storage for the key grouping.
func (m *Matcher) pushSteps(steps []int, mask uint64, t *stream.Tuple) ([]*Match, error) {
	pre := m.observe(t.TS)
	if len(steps) == 0 {
		return nil, nil
	}
	if !m.def.Partitioned() {
		m.single.advance(pre)
		return m.single.push(steps, mask, t)
	}
	// Partitioned: group qualifying steps by their extracted key.
	var out []*Match
	rem := append(m.remScratch[:0], steps...)
	for len(rem) > 0 {
		key := m.def.Steps[rem[0]].Key(t)
		same := m.sameScratch[:0]
		var sameMask uint64
		n := 0
		for _, si := range rem {
			if m.def.Steps[si].Key(t).Equal(key) {
				same = append(same, si)
				sameMask |= 1 << uint(si)
			} else {
				rem[n] = si
				n++
			}
		}
		rem = rem[:n]
		m.sameScratch = same
		p := m.partitionFor(key)
		p.eng.advance(pre)
		matches, err := p.eng.push(same, sameMask, t)
		out = append(out, matches...)
		if err != nil {
			m.remScratch = rem
			return out, err
		}
	}
	m.remScratch = rem
	return out, nil
}

// observe folds a pushed tuple's timestamp into the matcher clock and
// returns the clock as it stood before the tuple — the eviction horizon
// serial push-then-advance ingestion would have applied by now.
func (m *Matcher) observe(ts stream.Timestamp) stream.Timestamp {
	pre := m.clock
	if ts > m.clock {
		m.clock = ts
	}
	return pre
}

// BatchMatch is one completed match from PushBatch, tagged with the index
// of the tuple in the pushed run that triggered it.
type BatchMatch struct {
	Index int
	Match *Match
}

// PushBatch feeds a run of in-order tuples under one resolution. For a
// partitioned pattern the run is first grouped by partition key, so each
// partition's state is visited once per batch instead of once per tuple;
// partitions are independent, so per-partition processing in arrival order
// reproduces the serial match set, and the returned matches are re-ordered
// to the exact serial emission order (by triggering tuple, then by the
// serial key-visit order within a tuple).
func (m *Matcher) PushBatch(r *Resolved, run []*stream.Tuple) ([]BatchMatch, error) {
	return m.PushBatchAt(r, run, nil)
}

// PushBatchAt is PushBatch with explicit eviction horizons: prev, when
// non-nil, is parallel to run and prev[i] holds the timestamp of the tuple
// that immediately preceded run[i] in the full joint history. Callers that
// drop tuples from a run before pushing (guarded routing) pass the horizons
// so eviction still tracks every arrival, exactly as serial per-item
// ingestion would.
func (m *Matcher) PushBatchAt(r *Resolved, run []*stream.Tuple, prev []stream.Timestamp) ([]BatchMatch, error) {
	var out []BatchMatch
	if !m.def.Partitioned() {
		for i, t := range run {
			pre := m.observe(t.TS)
			if len(prev) > 0 && prev[i] > pre {
				pre = prev[i]
			}
			steps, mask := m.filterSteps(r, t, m.stepScratch[:0])
			m.stepScratch = steps
			if len(steps) == 0 {
				// Invisible to the pattern — same early-out as Push. Without
				// it, CONSECUTIVE would treat the tuple as a visible
				// non-extending arrival and break the active run.
				continue
			}
			m.single.advance(pre)
			matches, err := m.single.push(steps, mask, t)
			for _, match := range matches {
				out = append(out, BatchMatch{Index: i, Match: match})
			}
			if err != nil {
				return out, err
			}
		}
		return out, nil
	}
	// Pass 1: resolve steps and group by partition, preserving per-tuple
	// key-visit order in ord.
	entryClock := m.clock
	arena := m.stepArena[:0]
	touched := m.touched[:0]
	ord := 0
	for i, t := range run {
		lo := len(arena)
		arena, _ = m.filterSteps(r, t, arena)
		rem := arena[lo:]
		for len(rem) > 0 {
			key := m.def.Steps[rem[0]].Key(t)
			// Partition the remainder in place: qualifying steps for this key
			// move to the front (order within both halves is preserved).
			n := 0
			same := m.sameScratch[:0]
			var sameMask uint64
			for _, si := range rem {
				if m.def.Steps[si].Key(t).Equal(key) {
					same = append(same, si)
					sameMask |= 1 << uint(si)
				} else {
					rem[n] = si
					n++
				}
			}
			m.sameScratch = same
			copy(rem[n:], same)
			p := m.partitionFor(key)
			if len(p.pending) == 0 {
				touched = append(touched, p)
			}
			base := lo + len(rem) - len(same)
			p.pending = append(p.pending, pendingPush{ord: ord, index: i, lo: base, hi: base + len(same), mask: sameMask})
			ord++
			rem = rem[:n]
		}
	}
	m.stepArena = arena
	if n := len(run); n > 0 {
		m.observe(run[n-1].TS)
	}
	// Pass 2: drain each touched partition in arrival order, first evicting
	// to the serial clock horizon — the previous tuple's timestamp — so
	// state at each push matches the per-item interleaving exactly.
	emits := m.emitScratch[:0]
	var pushErr error
	for _, p := range touched {
		for _, pp := range p.pending {
			pre := entryClock
			if pp.index > 0 {
				if ts := run[pp.index-1].TS; ts > pre {
					pre = ts
				}
			}
			if len(prev) > 0 && prev[pp.index] > pre {
				pre = prev[pp.index]
			}
			p.eng.advance(pre)
			matches, err := p.eng.push(arena[pp.lo:pp.hi], pp.mask, run[pp.index])
			if len(matches) > 0 {
				emits = append(emits, batchEmit{ord: pp.ord, index: pp.index, matches: matches})
			}
			if err != nil && pushErr == nil {
				pushErr = err
			}
		}
		p.pending = p.pending[:0]
	}
	m.touched = touched[:0]
	// Pass 3: restore the serial emission order.
	sort.Slice(emits, func(i, j int) bool { return emits[i].ord < emits[j].ord })
	for _, em := range emits {
		for _, match := range em.matches {
			out = append(out, BatchMatch{Index: em.index, Match: match})
		}
	}
	for i := range emits {
		emits[i].matches = nil
	}
	m.emitScratch = emits[:0]
	return out, pushErr
}

func (m *Matcher) partitionFor(key stream.Value) *partition {
	h := key.Hash()
	for _, p := range m.parts[h] {
		if p.key.Equal(key) {
			return p
		}
	}
	p := &partition{key: key, eng: newEngine(&m.def, key)}
	m.parts[h] = append(m.parts[h], p)
	m.nparts++
	return p
}

// Advance moves event time to ts (from a heartbeat or a non-participating
// tuple), evicting expired matching state.
func (m *Matcher) Advance(ts stream.Timestamp) {
	if ts > m.clock {
		m.clock = ts
	}
	if m.single != nil {
		m.single.advance(ts)
		return
	}
	for _, chain := range m.parts {
		for _, p := range chain {
			p.eng.advance(ts)
		}
	}
}

// StateSize reports the number of tuples currently retained across all
// partitions — the measure behind the paper's claim that pairing modes and
// windows allow aggressive history purging.
func (m *Matcher) StateSize() int {
	if m.single != nil {
		return m.single.stateSize()
	}
	n := 0
	for _, chain := range m.parts {
		for _, p := range chain {
			n += p.eng.stateSize()
		}
	}
	return n
}

// Partitions reports how many distinct keys have live state.
func (m *Matcher) Partitions() int { return m.nparts }

// RunCount gauges the pending partial matches (runs, or RECENT chains)
// across all partitions — the live-state counterpart to StateSize's tuple
// count.
func (m *Matcher) RunCount() int {
	if m.single != nil {
		return m.single.runCount()
	}
	n := 0
	for _, chain := range m.parts {
		for _, p := range chain {
			n += p.eng.runCount()
		}
	}
	return n
}

// windowAdmits checks the sliding window when binding t at step, given the
// already-bound partial. PRECEDING windows anchored at step a constrain the
// earlier steps once the anchor binds; FOLLOWING windows constrain the
// later steps as they bind.
func windowAdmits(def *Def, partial *Match, step int, t *stream.Tuple) bool {
	w := def.Window
	if w == nil {
		return true
	}
	if w.Following {
		if step > w.Step {
			anchor := partial.Last(w.Step)
			if anchor == nil {
				return true // anchor unbound (shouldn't happen: steps bind in order)
			}
			return t.TS <= anchor.TS.Add(w.Span)
		}
		return true
	}
	// PRECEDING: when the anchor itself binds, every earlier tuple must be
	// within span before it.
	if step == w.Step {
		for i := 0; i < step; i++ {
			if f := partial.First(i); f != nil && f.TS < t.TS.Add(-w.Span) {
				return false
			}
		}
		// Star tuples already bound at the anchor step (t extends the
		// anchor's own star group) must also be covered.
		if f := partial.First(step); f != nil && f.TS < t.TS.Add(-w.Span) {
			return false
		}
	}
	return true
}

// predAdmits applies the cross-step residual predicate, if any.
func predAdmits(def *Def, partial *Match, step int, t *stream.Tuple) bool {
	return def.Pred == nil || def.Pred(partial, step, t)
}

// gapAdmits applies the star inter-arrival constraint when t would extend
// an existing star group whose last element is prev.
func gapAdmits(st *Step, prev, t *stream.Tuple) bool {
	return st.MaxGap == 0 || t.TS.Sub(prev.TS) <= st.MaxGap
}
