package core

import (
	"sort"

	"repro/internal/stream"
)

// Per-query acceptance for shared (merged) matchers.
//
// When N queries share a SEQ prefix, one Matcher runs the shared automaton
// with the final step's filter widened to the union of the member queries'
// final-step predicates. Each completed match is then attributed to the
// members that individually accept it. An Acceptor is one member's
// admission test; an AcceptSet is the dynamic member table with a
// constant-equality hash index over the final tuple, so attribution costs
// one probe plus the handful of candidate members instead of a scan of all
// N.

// Acceptor is one query's admission test at the final step of a shared
// matcher.
type Acceptor struct {
	// ID orders members; Accepted returns IDs ascending, which the caller
	// maps back to registration order.
	ID int
	// EqPos/EqVal index the member under a constant equality on the final
	// tuple (column position EqPos must equal EqVal). EqPos < 0 puts the
	// member on the always-checked list.
	EqPos int
	EqVal stream.Value
	// Filter is the member's remaining final-step visibility predicate
	// beyond the indexed equality (nil = none). It sees only the final
	// tuple, like a Step.Filter.
	Filter func(*stream.Tuple) bool
	// Check is the member's residual acceptance on the completed match
	// (multi-step predicates evaluated at the final step; nil = none).
	Check func(*Match) bool
	// MinSeq gates acceptance to matches whose earliest bound tuple arrived
	// after the member joined: a query registered mid-stream must not see
	// matches built from tuples that predate it.
	MinSeq uint64
}

// visible reports whether the member's final step would see t at all.
// A nil final tuple (a star final that matched zero tuples) satisfies only
// members with no final-tuple tests.
func (a *Acceptor) visible(t *stream.Tuple) bool {
	if t == nil {
		return a.EqPos < 0 && a.Filter == nil
	}
	if a.EqPos >= 0 {
		v := t.Get(a.EqPos)
		if v.Kind() == stream.KindNull {
			return false
		}
		if c, ok := v.Compare(a.EqVal); !ok || c != 0 {
			return false
		}
	}
	return a.Filter == nil || a.Filter(t)
}

// accepts is the full member admission test for a completed match ending
// in t.
func (a *Acceptor) accepts(t *stream.Tuple, m *Match) bool {
	if !a.visible(t) {
		return false
	}
	if a.MinSeq > 0 && matchMinSeq(m) <= a.MinSeq {
		return false
	}
	return a.Check == nil || a.Check(m)
}

// matchMinSeq is the arrival sequence of the earliest tuple bound anywhere
// in the match (star groups may leave early steps empty).
func matchMinSeq(m *Match) uint64 {
	min := uint64(0)
	for _, g := range m.Groups {
		if len(g) == 0 {
			continue
		}
		if s := g[0].Seq; min == 0 || s < min {
			min = s
		}
	}
	return min
}

// acceptEntry collects the member IDs indexed under one (column, value).
type acceptEntry struct {
	val stream.Value
	ids []int
}

// acceptCol is the hash index for one final-tuple column.
type acceptCol struct {
	pos     int
	entries map[uint64][]acceptEntry
}

// AcceptSet is the dynamic per-query acceptance table of a shared matcher.
// Members are added at query registration and removed at deregistration;
// Visible serves as the shared automaton's final-step filter and Accepted
// attributes each completed match. Not safe for concurrent use (the owning
// engine serializes access).
type AcceptSet struct {
	members []Acceptor // ascending ID
	cols    []acceptCol
	checked []int // member indexes with no equality to index
	scratch []int // probe candidate buffer, reused across Accepted calls
}

// Len returns the member count.
func (s *AcceptSet) Len() int { return len(s.members) }

// Sole returns the only member when exactly one is registered, else nil.
// Callers batching a single member's emissions use it to run the admission
// test directly, skipping per-match attribution.
func (s *AcceptSet) Sole() *Acceptor {
	if len(s.members) != 1 {
		return nil
	}
	return &s.members[0]
}

// Accepts is the member's full admission test for a completed match ending
// in final tuple t.
func (a *Acceptor) Accepts(t *stream.Tuple, m *Match) bool { return a.accepts(t, m) }

// Members returns the acceptor IDs in insertion order.
func (s *AcceptSet) Members() []int {
	ids := make([]int, len(s.members))
	for i := range s.members {
		ids[i] = s.members[i].ID
	}
	return ids
}

// Add inserts a member. IDs must be unique and increase over the life of
// the set so acceptance order tracks registration order.
func (s *AcceptSet) Add(a Acceptor) {
	s.members = append(s.members, a)
	sort.SliceStable(s.members, func(i, j int) bool { return s.members[i].ID < s.members[j].ID })
	s.rebuild()
}

// SetMinSeq re-points a member's registration fence (snapshot restore: the
// fence was taken against the snapshotted engine's arrival counter).
func (s *AcceptSet) SetMinSeq(id int, seq uint64) {
	for i := range s.members {
		if s.members[i].ID == id {
			s.members[i].MinSeq = seq
			return
		}
	}
}

// Remove deletes the member with the given ID, reporting whether it was
// present. Shared automaton state is untouched: remaining members keep
// matching against the same runs.
func (s *AcceptSet) Remove(id int) bool {
	for i := range s.members {
		if s.members[i].ID == id {
			s.members = append(s.members[:i], s.members[i+1:]...)
			s.rebuild()
			return true
		}
	}
	return false
}

func (s *AcceptSet) rebuild() {
	s.cols = s.cols[:0]
	s.checked = s.checked[:0]
	for i := range s.members {
		a := &s.members[i]
		if a.EqPos < 0 {
			s.checked = append(s.checked, i)
			continue
		}
		var col *acceptCol
		for ci := range s.cols {
			if s.cols[ci].pos == a.EqPos {
				col = &s.cols[ci]
				break
			}
		}
		if col == nil {
			s.cols = append(s.cols, acceptCol{pos: a.EqPos, entries: map[uint64][]acceptEntry{}})
			col = &s.cols[len(s.cols)-1]
		}
		h := a.EqVal.Hash()
		bucket := col.entries[h]
		found := false
		for bi := range bucket {
			if bucket[bi].val.Equal(a.EqVal) {
				bucket[bi].ids = append(bucket[bi].ids, i)
				found = true
				break
			}
		}
		if !found {
			bucket = append(bucket, acceptEntry{val: a.EqVal, ids: []int{i}})
		}
		col.entries[h] = bucket
	}
}

// probe appends the indexes of indexed members whose equality admits t.
func (s *AcceptSet) probe(t *stream.Tuple, dst []int) []int {
	if t == nil {
		return dst
	}
	for ci := range s.cols {
		col := &s.cols[ci]
		v := t.Get(col.pos)
		if v.Kind() == stream.KindNull {
			continue
		}
		for _, entry := range col.entries[v.Hash()] {
			if entry.val.Equal(v) {
				dst = append(dst, entry.ids...)
			}
		}
	}
	return dst
}

// Visible reports whether any member's final step would see t: it is the
// union filter installed on the shared automaton's final step. Sound for
// the merged pairing modes because an invisible-to-one-member final tuple
// is a pure no-op there — visibility only gates completion enumeration,
// never shared prefix state.
func (s *AcceptSet) Visible(t *stream.Tuple) bool {
	if len(s.members) == 1 {
		return s.members[0].visible(t)
	}
	if t == nil {
		for _, mi := range s.checked {
			if s.members[mi].Filter == nil {
				return true
			}
		}
		return false
	}
	for ci := range s.cols {
		col := &s.cols[ci]
		v := t.Get(col.pos)
		if v.Kind() == stream.KindNull {
			continue
		}
		for _, entry := range col.entries[v.Hash()] {
			if !entry.val.Equal(v) {
				continue
			}
			for _, mi := range entry.ids {
				a := &s.members[mi]
				if a.Filter == nil || a.Filter(t) {
					return true
				}
			}
		}
	}
	for _, mi := range s.checked {
		a := &s.members[mi]
		if a.Filter == nil || a.Filter(t) {
			return true
		}
	}
	return false
}

// Accepted appends the IDs of members accepting the completed match m
// (ending in final tuple t) to buf, ascending, and returns it.
func (s *AcceptSet) Accepted(t *stream.Tuple, m *Match, buf []int) []int {
	if len(s.members) == 1 {
		// Singleton group (a query merged with none so far): no index probe
		// to run, no order to restore.
		if a := &s.members[0]; a.accepts(t, m) {
			buf = append(buf, a.ID)
		}
		return buf
	}
	start := len(buf)
	s.scratch = s.probe(t, s.scratch[:0])
	for _, mi := range s.scratch {
		a := &s.members[mi]
		if a.accepts(t, m) {
			buf = append(buf, a.ID)
		}
	}
	for _, mi := range s.checked {
		a := &s.members[mi]
		if a.accepts(t, m) {
			buf = append(buf, a.ID)
		}
	}
	if tail := buf[start:]; len(tail) > 1 {
		sort.Ints(tail)
	}
	return buf
}
