package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/stream"
)

// batchFeed drives a matcher through the batch path: consecutive
// same-stream tuples are grouped into runs of at most batch tuples and
// pushed via Resolve/PushBatch, mirroring the engine's dispatch.
func batchFeed(t *testing.T, m *Matcher, batch int, tuples []*stream.Tuple) []*Match {
	t.Helper()
	resolved := map[string]*Resolved{}
	var out []*Match
	i := 0
	for i < len(tuples) {
		name := tuples[i].Schema.Name()
		j := i + 1
		for j < len(tuples) && j-i < batch && tuples[j].Schema.Name() == name {
			j++
		}
		r := resolved[name]
		if r == nil {
			r = m.Resolve(name)
			resolved[name] = r
		}
		bms, err := m.PushBatch(r, tuples[i:j])
		if err != nil {
			panic(err)
		}
		for _, bm := range bms {
			out = append(out, bm.Match)
		}
		i = j
	}
	return out
}

// trace generates a random keyed C1->C2->C3 workload with interleaved tags
// and occasional simultaneous timestamps.
func trace(rng *rand.Rand, n int) []*stream.Tuple {
	streams := []string{"C1", "C2", "C3"}
	tags := []string{"a", "b", "c", "d"}
	ts := time.Duration(0)
	out := make([]*stream.Tuple, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) > 0 {
			ts += time.Duration(rng.Intn(3)) * time.Second
		}
		out = append(out, mk(streams[rng.Intn(len(streams))], ts, tags[rng.Intn(len(tags))]))
	}
	return out
}

func keyed(def Def) Def {
	for i := range def.Steps {
		def.Steps[i].Key = func(t *stream.Tuple) stream.Value { return t.Get(1) }
	}
	return def
}

// TestPushBatchMatchesSerial cross-checks the key-grouped batch path
// against tuple-at-a-time Push: same matches, same emission order, for
// every pairing mode, keyed and unkeyed, windowed and not, at batch sizes
// spanning the degenerate and the amortizing.
func TestPushBatchMatchesSerial(t *testing.T) {
	modes := []Mode{ModeUnrestricted, ModeRecent, ModeChronicle, ModeConsecutive}
	for _, mode := range modes {
		for _, part := range []bool{false, true} {
			for _, win := range []bool{false, true} {
				def := seqDef(mode, "C1", "C2", "C3")
				if part {
					def = keyed(def)
				}
				if win {
					def.Window = &WindowAnchor{Span: 5 * time.Second, Step: len(def.Steps) - 1}
				}
				for _, batch := range []int{1, 3, 7, 64} {
					rng := rand.New(rand.NewSource(int64(batch) + 17*int64(mode)))
					tuples := trace(rng, 300)
					serial := MustMatcher(def)
					batched := MustMatcher(def)
					want := feed(t, serial, tuples...)
					got := batchFeed(t, batched, batch, tuples)
					if !reflect.DeepEqual(sigs(want), sigs(got)) {
						t.Fatalf("mode=%v part=%v win=%v batch=%d:\nserial %v\nbatch  %v",
							mode, part, win, batch, sigs(want), sigs(got))
					}
					if serial.StateSize() != batched.StateSize() {
						t.Fatalf("mode=%v part=%v win=%v batch=%d: state %d vs %d",
							mode, part, win, batch, serial.StateSize(), batched.StateSize())
					}
				}
			}
		}
	}
}

// TestPushBatchStepFilters checks that per-tuple step filters apply on the
// batch path (resolution is per-alias, filters per-tuple).
func TestPushBatchStepFilters(t *testing.T) {
	def := seqDef(ModeUnrestricted, "C1", "C2")
	def.Steps[0].Filter = func(t *stream.Tuple) bool {
		v, _ := t.Get(1).AsString()
		return v == "a"
	}
	tuples := []*stream.Tuple{
		mk("C1", 1*time.Second, "a"),
		mk("C1", 2*time.Second, "b"), // filtered out of step 0
		mk("C2", 3*time.Second, "a"),
	}
	serial := MustMatcher(def)
	batched := MustMatcher(def)
	want := feed(t, serial, tuples...)
	got := batchFeed(t, batched, 64, tuples)
	if len(want) != 1 || !reflect.DeepEqual(sigs(want), sigs(got)) {
		t.Fatalf("serial %v batch %v", sigs(want), sigs(got))
	}
}

// TestPushBatchSelfSequence exercises one tuple qualifying for several
// steps (same stream aliased at every position) so the batch path must
// preserve the descending same-arrival step order and the per-tuple
// key-visit order.
func TestPushBatchSelfSequence(t *testing.T) {
	for _, part := range []bool{false, true} {
		def := seqDef(ModeUnrestricted, "R1", "R2")
		if part {
			def = keyed(def)
		}
		rng := rand.New(rand.NewSource(5))
		var tuples []*stream.Tuple
		ts := time.Duration(0)
		for i := 0; i < 120; i++ {
			if rng.Intn(3) > 0 {
				ts += time.Second
			}
			tuples = append(tuples, mk("R1", ts, []string{"a", "b"}[rng.Intn(2)]))
		}
		serial := MustMatcher(def)
		batched := MustMatcher(def)
		var want []*Match
		for _, tu := range tuples {
			ms, err := serial.Push(tu, "R1", "R2")
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, ms...)
		}
		r := batched.Resolve("R1", "R2")
		var got []*Match
		for i := 0; i < len(tuples); i += 16 {
			j := i + 16
			if j > len(tuples) {
				j = len(tuples)
			}
			bms, err := batched.PushBatch(r, tuples[i:j])
			if err != nil {
				t.Fatal(err)
			}
			for _, bm := range bms {
				got = append(got, bm.Match)
			}
		}
		if !reflect.DeepEqual(sigs(want), sigs(got)) {
			t.Fatalf("part=%v:\nserial %v\nbatch  %v", part, sigs(want), sigs(got))
		}
	}
}

// TestPushBatchInterleavedAdvance checks that eviction deferred to batch
// boundaries leaves the same state and matches as per-tuple advance for
// windowed patterns (bind-time window checks are the oracle).
func TestPushBatchInterleavedAdvance(t *testing.T) {
	def := keyed(seqDef(ModeUnrestricted, "C1", "C2"))
	def.Window = &WindowAnchor{Span: 2 * time.Second, Step: 1}
	serial := MustMatcher(def)
	batched := MustMatcher(def)
	tuples := []*stream.Tuple{
		mk("C1", 1*time.Second, "a"),
		mk("C1", 2*time.Second, "b"),
		mk("C2", 5*time.Second, "a"), // outside window: no match
		mk("C1", 6*time.Second, "a"),
		mk("C2", 7*time.Second, "a"),
	}
	var want []*Match
	for _, tu := range tuples {
		ms, _ := serial.Push(tu, tu.Schema.Name())
		want = append(want, ms...)
		serial.Advance(tu.TS) // eager per-tuple advance
	}
	got := batchFeed(t, batched, 64, tuples)
	batched.Advance(tuples[len(tuples)-1].TS) // one advance per batch
	if !reflect.DeepEqual(sigs(want), sigs(got)) {
		t.Fatalf("serial %v batch %v", sigs(want), sigs(got))
	}
	if serial.StateSize() != batched.StateSize() {
		t.Fatalf("state %d vs %d", serial.StateSize(), batched.StateSize())
	}
}
