package core

import (
	"repro/internal/stream"
	"repro/internal/window"
)

// chainEngine matches plain (star-free) sequences under the UNRESTRICTED,
// RECENT and CHRONICLE pairing modes.
//
//   - UNRESTRICTED keeps a windowed history buffer per non-final step and,
//     on each final-step arrival, enumerates every time-ordered combination
//     (§3.1.1's "all possible sequences of the correct time order").
//   - CHRONICLE keeps FIFO history per step; on a final-step arrival it
//     binds the chronologically earliest qualifying chain and consumes the
//     participants.
//   - RECENT keeps exactly one chain per prefix length: an arriving step-i
//     tuple extends a copy of the prefix chain of length i and replaces the
//     stored length-i+1 chain, implementing "earlier tuples are constantly
//     replaced by later tuples as the candidate".
type chainEngine struct {
	def *Def
	key stream.Value

	// bufs[i] is the retained history for step i (UNRESTRICTED/CHRONICLE);
	// the final step needs no history.
	bufs []*window.TimeBuffer

	// chains[i] is the RECENT-mode chain covering steps 0..i (final step
	// excluded: completions are emitted, not stored).
	chains []*Match
}

func newChainEngine(def *Def, key stream.Value) engine {
	e := &chainEngine{def: def, key: key}
	n := len(def.Steps)
	if def.Mode == ModeRecent {
		e.chains = make([]*Match, n-1)
	} else {
		e.bufs = make([]*window.TimeBuffer, n-1)
		for i := range e.bufs {
			e.bufs[i] = &window.TimeBuffer{}
		}
	}
	return e
}

func (e *chainEngine) push(steps []int, _ uint64, t *stream.Tuple) ([]*Match, error) {
	var out []*Match
	last := len(e.def.Steps) - 1
	for _, si := range steps { // already descending
		if si == last {
			out = append(out, e.complete(t)...)
			continue
		}
		switch e.def.Mode {
		case ModeRecent:
			e.extendChain(si, t)
		default:
			if err := e.bufs[si].Add(t); err != nil {
				return out, err
			}
		}
	}
	e.evict(t.TS)
	return out, nil
}

// extendChain implements RECENT binding of t at non-final step si.
func (e *chainEngine) extendChain(si int, t *stream.Tuple) {
	var c *Match
	if si == 0 {
		c = &Match{Groups: make([][]*stream.Tuple, len(e.def.Steps)), Key: e.key}
	} else {
		prev := e.chains[si-1]
		if prev == nil {
			return // no qualifying prefix
		}
		if lastT := prev.Last(si - 1); lastT == nil || !lastT.BeforeInOrder(t) {
			return
		}
		if !windowAdmits(e.def, prev, si, t) || !predAdmits(e.def, prev, si, t) {
			return
		}
		// Chains only ever replace whole groups (singletons), never append
		// into them, so the prefix copy can share group arrays
		// copy-on-write. Emission still deep-clones (see complete).
		c = prev.cowClone()
	}
	c.Groups[si] = []*stream.Tuple{t}
	e.chains[si] = c
}

// complete handles a final-step arrival, emitting completed matches.
func (e *chainEngine) complete(t *stream.Tuple) []*Match {
	last := len(e.def.Steps) - 1
	switch e.def.Mode {
	case ModeRecent:
		if last == 0 {
			m := &Match{Groups: [][]*stream.Tuple{{t}}, Key: e.key}
			if predAdmits(e.def, &Match{Groups: make([][]*stream.Tuple, 1), Key: e.key}, 0, t) {
				return []*Match{m}
			}
			return nil
		}
		prev := e.chains[last-1]
		if prev == nil {
			return nil
		}
		if lastT := prev.Last(last - 1); lastT == nil || !lastT.BeforeInOrder(t) {
			return nil
		}
		if !windowAdmits(e.def, prev, last, t) || !predAdmits(e.def, prev, last, t) {
			return nil
		}
		m := prev.clone()
		m.Groups[last] = []*stream.Tuple{t}
		return []*Match{m}

	case ModeChronicle:
		partial := &Match{Groups: make([][]*stream.Tuple, len(e.def.Steps)), Key: e.key}
		if e.searchEarliest(partial, 0, t) {
			partial.Groups[last] = []*stream.Tuple{t}
			// Consume participants: each tuple forms at most one event.
			for i := 0; i < last; i++ {
				e.bufs[i].Remove(partial.Groups[i][0])
			}
			return []*Match{partial}
		}
		return nil

	default: // ModeUnrestricted
		partial := &Match{Groups: make([][]*stream.Tuple, len(e.def.Steps)), Key: e.key}
		var out []*Match
		e.enumerate(partial, 0, t, &out)
		return out
	}
}

// searchEarliest binds steps si..last-1 with the chronologically earliest
// qualifying tuples (DFS with backtracking so that a constraint failure on
// a later step tries the next candidate). Returns true when a full prefix
// chain was bound into partial, and finally validates the terminal tuple.
func (e *chainEngine) searchEarliest(partial *Match, si int, t *stream.Tuple) bool {
	last := len(e.def.Steps) - 1
	if si == last {
		return windowAdmits(e.def, partial, last, t) && predAdmits(e.def, partial, last, t)
	}
	ok := false
	e.bufs[si].Each(func(cand *stream.Tuple) bool {
		if si > 0 {
			prev := partial.Last(si - 1)
			if !prev.BeforeInOrder(cand) {
				return true // too early; keep scanning
			}
		}
		if !cand.BeforeInOrder(t) {
			return false // at/after the terminal tuple; no later candidate helps
		}
		if !windowAdmits(e.def, partial, si, cand) || !predAdmits(e.def, partial, si, cand) {
			return true
		}
		partial.Groups[si] = []*stream.Tuple{cand}
		if e.searchEarliest(partial, si+1, t) {
			ok = true
			return false
		}
		partial.Groups[si] = nil
		return true
	})
	return ok
}

// enumerate emits every qualifying combination (UNRESTRICTED).
func (e *chainEngine) enumerate(partial *Match, si int, t *stream.Tuple, out *[]*Match) {
	last := len(e.def.Steps) - 1
	if si == last {
		if windowAdmits(e.def, partial, last, t) && predAdmits(e.def, partial, last, t) {
			m := partial.clone()
			m.Groups[last] = []*stream.Tuple{t}
			*out = append(*out, m)
		}
		return
	}
	e.bufs[si].Each(func(cand *stream.Tuple) bool {
		if si > 0 {
			prev := partial.Last(si - 1)
			if !prev.BeforeInOrder(cand) {
				return true
			}
		}
		if !cand.BeforeInOrder(t) {
			return false
		}
		if !windowAdmits(e.def, partial, si, cand) || !predAdmits(e.def, partial, si, cand) {
			return true
		}
		partial.Groups[si] = []*stream.Tuple{cand}
		e.enumerate(partial, si+1, t, out)
		partial.Groups[si] = nil
		return true
	})
}

// evict drops history that no future match can use. With a PRECEDING window
// anchored on the final step, every bound tuple must lie within the span
// before a future terminal tuple, whose timestamp is at least the current
// event time — so anything older than now-span is dead.
func (e *chainEngine) evict(now stream.Timestamp) {
	w := e.def.Window
	if w == nil || w.Following || w.Step != len(e.def.Steps)-1 || e.bufs == nil {
		return
	}
	cut := now.Add(-w.Span)
	for _, b := range e.bufs {
		b.EvictBefore(cut)
	}
}

func (e *chainEngine) advance(ts stream.Timestamp) { e.evict(ts) }

func (e *chainEngine) runCount() int {
	n := 0
	for _, c := range e.chains {
		if c != nil {
			n++
		}
	}
	return n
}

func (e *chainEngine) stateSize() int {
	n := 0
	for _, b := range e.bufs {
		n += b.Len()
	}
	for _, c := range e.chains {
		if c == nil {
			continue
		}
		for _, g := range c.Groups {
			n += len(g)
		}
	}
	return n
}
