package eslev

import (
	"time"

	"repro/internal/ale"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/esl"
	"repro/internal/rfid"
	"repro/internal/shard"
	"repro/internal/snapshot"
	"repro/internal/spec"
	"repro/internal/stream"
)

// ---- values, tuples, time ---------------------------------------------------

// Value is one SQL value (a compact tagged union: NULL, INT, FLOAT,
// STRING, BOOL, TIME).
type Value = stream.Value

// Null is the SQL NULL value.
var Null = stream.Null

// Int builds an integer value.
func Int(v int64) Value { return stream.Int(v) }

// Float builds a floating-point value.
func Float(v float64) Value { return stream.Float(v) }

// Str builds a string value.
func Str(v string) Value { return stream.Str(v) }

// Bool builds a boolean value.
func Bool(v bool) Value { return stream.Bool(v) }

// Time builds a timestamp value.
func Time(ts Timestamp) Value { return stream.Time(ts) }

// Timestamp is an event-time instant (nanoseconds since the simulation
// epoch). All windows and sequence ordering use event time, never the wall
// clock.
type Timestamp = stream.Timestamp

// TS converts a duration offset from the epoch into a Timestamp.
func TS(d time.Duration) Timestamp { return stream.TS(d) }

// Tuple is one stream record.
type Tuple = stream.Tuple

// Schema describes the columns of a stream or table.
type Schema = stream.Schema

// Field is one schema column.
type Field = stream.Field

// NewSchema declares a schema programmatically (streams declared via
// Exec(CREATE STREAM ...) get theirs automatically).
func NewSchema(name string, fields ...Field) (*Schema, error) {
	return stream.NewSchema(name, fields...)
}

// NewTuple builds a tuple against a schema, validating types and
// synchronizing the event-time column.
func NewTuple(s *Schema, ts Timestamp, vals ...Value) (*Tuple, error) {
	return stream.NewTuple(s, ts, vals...)
}

// Item is a merged element: a tuple or a heartbeat.
type Item = stream.Item

// Heartbeat builds a punctuation item carrying only a timestamp.
func Heartbeat(ts Timestamp) Item { return stream.Heartbeat(ts) }

// Source is one ordered input to a Merger.
type Source = stream.Source

// Merger combines concurrent sources into one deterministic event-time
// sequence; feed its output to Engine.Feed.
type Merger = stream.Merger

// NewMerger builds a merger over the sources.
func NewMerger(sources ...Source) *Merger { return stream.NewMerger(sources...) }

// ---- the engine --------------------------------------------------------------

// Engine is the ESL-EV continuous-query engine. See esl.Engine for the
// execution model; this alias is the supported public entry point.
type Engine = esl.Engine

// Row is one output row of a continuous or snapshot query.
type Row = esl.Row

// Query is a registered continuous query handle.
type Query = esl.Query

// ScalarFunc is a user-defined scalar function callable from queries.
type ScalarFunc = esl.ScalarFunc

// Accumulator is a custom (Go-level) aggregate implementation; SQL-bodied
// UDAs are declared in the language via CREATE AGGREGATE.
type Accumulator = esl.Accumulator

// New builds an empty engine with the built-in functions (extract_serial,
// epc_match, ...) and aggregates (COUNT/SUM/AVG/MIN/MAX) installed. Options
// enable the fault-tolerant ingest boundary (WithSlack, WithLateness, ...);
// with no options the engine runs the strict historical path: in-order
// arrivals only, disorder rejected with an error.
func New(opts ...Option) *Engine { return esl.New(opts...) }

// ---- fault tolerance ----------------------------------------------------------

// Option configures an Engine (or the boundary of a ShardedEngine) at
// construction.
type Option = esl.Option

// WithSlack absorbs bounded arrival disorder at the ingest boundary: tuples
// are held back until the high-water mark passes ts+slack, then released to
// the exact in-order core in (timestamp, arrival) order.
func WithSlack(d time.Duration) Option { return esl.WithSlack(d) }

// WithLateness selects the fate of tuples behind the watermark: LateError
// (default), LateDrop, or LateDeadLetter.
func WithLateness(p LatenessPolicy) Option { return esl.WithLateness(p) }

// WithMaxTupleBytes quarantines rows whose estimated size exceeds the budget.
func WithMaxTupleBytes(n int) Option { return esl.WithMaxTupleBytes(n) }

// WithExactDedup drops exact duplicate tuples arriving within the reorder
// horizon.
func WithExactDedup() Option { return esl.WithExactDedup() }

// WithoutRouteIndex disables the shared multi-query routing index, forcing
// every tuple through every query reading its stream (debugging escape
// hatch; routing is on by default and semantics-preserving).
func WithoutRouteIndex() Option { return esl.WithoutRouteIndex() }

// WithoutPlanMerge disables multi-query plan merging, running every SEQ
// query on its own automaton (debugging escape hatch; merging is on by
// default and semantics-preserving).
func WithoutPlanMerge() Option { return esl.WithoutPlanMerge() }

// ---- durability & recovery ----------------------------------------------------
//
// Durable state has two layers: versioned snapshots of all mutable engine
// state (Engine.Checkpoint / Engine.Restore write and read them on any
// io.Writer/Reader; both are also methods of ShardedEngine), and an
// append-only event journal of every offered item. With WithJournal enabled,
// Engine.Recover(dir) — or ShardedEngine.Recover — loads the newest valid
// snapshot in dir and replays the journal suffix past its cut, re-emitting
// exactly the rows the crashed run produced after the snapshot.
// Engine.CheckpointNow forces a durable snapshot between the automatic
// WithCheckpointEvery cuts.

// WithJournal enables the append-only event journal in dir: every offered
// item (tuple or heartbeat) is assigned a log sequence number and appended
// before the engine processes it, so recovery is snapshot + journal suffix.
func WithJournal(dir string) Option { return esl.WithJournal(dir) }

// WithCheckpointEvery writes a durable snapshot into the journal directory
// every n journaled records (requires WithJournal).
func WithCheckpointEvery(n int) Option { return esl.WithCheckpointEvery(n) }

// WithFsync selects the journal's durability/throughput trade-off; see the
// FsyncPolicy constants.
func WithFsync(p FsyncPolicy) Option { return esl.WithFsync(p) }

// ---- time travel ---------------------------------------------------------------
//
// Every checkpoint names the current state of each table as an immutable
// version at that checkpoint's LSN. Snapshot queries read any retained
// version with an AS OF clause —
//
//	SELECT * FROM location_history AS OF LSN 2000
//	SELECT * FROM location_history AS OF TIMESTAMP 30 SECONDS
//
// — resolving the anchor down to the newest checkpoint at or before it.
// Versions survive Engine.Recover: a restored replica serves the same
// historical reads as the original.

// WithRetainVersions keeps only the newest n checkpoint-cut table versions
// reachable for AS OF queries (0, the default, retains all). Versions
// pinned by in-flight readers survive the bound until unpinned.
func WithRetainVersions(n int) Option { return esl.WithRetainVersions(n) }

// FsyncPolicy selects how eagerly journal appends reach stable storage.
// Records are group-committed — flushed to the OS at every push-call
// boundary — so a process crash loses at most the unacknowledged call; the
// policy governs the further page-cache-to-disk step that matters only for
// OS or power failure.
type FsyncPolicy = snapshot.FsyncPolicy

// The fsync policies.
const (
	// FsyncNever leaves flushing to the OS: fastest, may lose the tail on
	// power failure.
	FsyncNever = snapshot.FsyncNever
	// FsyncInterval syncs once per sync window: bounded loss.
	FsyncInterval = snapshot.FsyncInterval
	// FsyncAlways syncs after every record: zero loss, slowest.
	FsyncAlways = snapshot.FsyncAlways
)

// Snapshot and recovery failure sentinels (match with errors.Is).
var (
	// ErrSnapshotTruncated: the input ended before the declared length.
	ErrSnapshotTruncated = snapshot.ErrTruncated
	// ErrSnapshotCorrupt: framing or checksum failure.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
	// ErrSnapshotVersion: written by an incompatible codec version.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrStateMismatch: the snapshot does not match the engine's registered
	// streams, queries, or ingest configuration.
	ErrStateMismatch = snapshot.ErrStateMismatch
	// ErrShardMismatch: serial/sharded kind or shard count disagrees.
	ErrShardMismatch = snapshot.ErrShardMismatch
)

// LatenessPolicy decides what happens to tuples behind the ingest watermark.
type LatenessPolicy = stream.LatenessPolicy

// The lateness policies.
const (
	LateError      = stream.LateError
	LateDrop       = stream.LateDrop
	LateDeadLetter = stream.LateDeadLetter
)

// DeadLetter is one quarantined record: the offending tuple, the reason
// code, and — for query panics — the query name and captured stack.
type DeadLetter = stream.DeadLetter

// DeadReason classifies why a record was quarantined.
type DeadReason = stream.DeadReason

// The dead-letter reason codes.
const (
	DeadLate       = stream.DeadLate
	DeadMalformed  = stream.DeadMalformed
	DeadOversized  = stream.DeadOversized
	DeadQueryPanic = stream.DeadQueryPanic
)

// ---- speculative execution -----------------------------------------------------
//
// On a slack-configured engine, queries registered FAST or MIDDLE (via
// WithConsistency or a trailing CONSISTENCY clause in the SQL) emit
// speculative rows ahead of the watermark and compensate disorder with
// retractions. Every delivered row then carries a polarity (+/−/final) and
// a stable match identity; folding retractions against their assertions
// reproduces the STRICT output exactly.

// ConsistencyLevel is the per-query speculation/latency trade-off.
type ConsistencyLevel = spec.Level

// The consistency levels.
const (
	// Strict is the watermark-gated default: rows emit only once the
	// reorder boundary proves their inputs final.
	Strict = spec.Strict
	// Middle emits after a short speculation horizon with bounded
	// retraction depth.
	Middle = spec.Middle
	// Fast emits on arrival and compensates with retractions.
	Fast = spec.Fast
)

// ParseConsistencyLevel parses a level name ("STRICT", "MIDDLE", "FAST"),
// case-insensitively.
func ParseConsistencyLevel(s string) (ConsistencyLevel, bool) { return spec.ParseLevel(s) }

// Polarity is the sign a delivered record carries: Assert (+1) adds a
// speculative row, Retract (−1) cancels a prior assertion with the same
// match identity, Final (0) is a watermark-proven row.
type Polarity = spec.Polarity

// The record polarities.
const (
	PolarityAssert  = spec.Assert
	PolarityRetract = spec.Retract
	PolarityFinal   = spec.Final
)

// QueryOption tunes one RegisterQueryOpts registration.
type QueryOption = esl.QueryOption

// WithConsistency selects the query's speculation level at register time,
// overriding any CONSISTENCY clause in the SQL.
func WithConsistency(l ConsistencyLevel) QueryOption { return esl.WithConsistency(l) }

// WithRetractionDepth caps how many unconfirmed assertions a MIDDLE query
// may have outstanding (default 64): beyond it, speculative emission is
// suppressed until the strict path catches up.
func WithRetractionDepth(n int) QueryOption { return esl.WithRetractionDepth(n) }

// RecordTags reports a delivered row's speculation tags: its polarity plus
// the (sequence, provenance-hash) pair forming the stable match identity a
// retraction shares with the assertion it cancels. Strict rows report
// (PolarityFinal, 0, 0).
func RecordTags(r Row) (pol Polarity, seq, hash uint64) { return esl.RecordTags(r) }

// TagRecord returns a copy of r carrying the given record tags — the
// decode-side constructor for transports that ship polarity out of band.
func TagRecord(r Row, pol Polarity, seq, hash uint64) Row { return esl.TagRecord(r, pol, seq, hash) }

// SpecStats is the per-query speculation counter snapshot returned by
// Engine.SpecStats: assertions, confirmations, retractions, late finals,
// suppressed emissions, and the level's gate gauges.
type SpecStats = esl.SpecStats

// EngineStats is the engine-wide robustness counter snapshot; the boundary
// balance Ingested = Emitted + DroppedLate + DroppedDup + DeadLettered +
// PendingReorder holds at every instant.
type EngineStats = esl.EngineStats

// QueryStats is the per-query observability snapshot returned by
// Engine.Stats: emitted rows, retained state, live partial-match runs, and
// the routing index's delivered/skipped tuple counts.
type QueryStats = esl.QueryStats

// Table is a persistent in-memory relation reachable from stream–DB
// spanning queries.
type Table = db.Table

// Of wraps a tuple as a merged stream item.
func Of(t *Tuple) Item { return stream.Of(t) }

// Batch is a pooled column-of-tuples unit of vectorized execution: a run of
// same-stream tuples plus a selection vector that fused operator kernels
// narrow instead of copying survivors. Engine.PushBatch and
// ShardedEngine.PushBatch move items through the engines batch-at-a-time;
// Batch itself is the internal carrier, exported for kernel-level tooling
// and tests.
type Batch = stream.Batch

// GetBatch leases an empty batch from the shared pool; return it with
// Release when the tuples are no longer referenced.
func GetBatch() *Batch { return stream.GetBatch() }

// ---- partition-parallel execution --------------------------------------------

// ShardedEngine runs N independent engine replicas in parallel, hash-routing
// tuples by the planner-derived partition key: keyed SEQ queries and
// stateless filter-projections distribute across shards, while global work
// (aggregates, exception timers, EXISTS windows, table access) runs on
// shard 0 with an exact serial clock. Output re-merges in timestamp order.
// The API mirrors Engine; push all input from one goroutine and call Drain
// (or Close) before reading final results.
type ShardedEngine = shard.Engine

// NewSharded builds a sharded engine over n replicas (n >= 1). Options
// configure the shared fault-tolerant ingest boundary ahead of the hash
// router; the replicas themselves stay strict.
func NewSharded(n int, opts ...Option) *ShardedEngine { return shard.New(n, opts...) }

// ---- the temporal-event core as a direct Go API ------------------------------
//
// The SEQ machinery is also usable without SQL: build a PatternDef, feed
// tuples to a Matcher. This is the paper's §3 contribution as a library.

// PatternDef declares a SEQ pattern (steps, pairing mode, window).
type PatternDef = core.Def

// PatternStep is one position of a pattern.
type PatternStep = core.Step

// PairingMode is a Tuple Pairing Mode.
type PairingMode = core.Mode

// The four pairing modes of §3.1.1.
const (
	Unrestricted = core.ModeUnrestricted
	Recent       = core.ModeRecent
	Chronicle    = core.ModeChronicle
	Consecutive  = core.ModeConsecutive
)

// PatternWindow anchors a sliding window on a pattern step.
type PatternWindow = core.WindowAnchor

// Match is one detected event.
type Match = core.Match

// Matcher evaluates a SEQ pattern incrementally.
type Matcher = core.Matcher

// NewMatcher validates the pattern and builds a matcher.
func NewMatcher(def PatternDef) (*Matcher, error) { return core.NewMatcher(def) }

// ExceptionMatcher evaluates EXCEPTION_SEQ / CLEVEL_SEQ patterns.
type ExceptionMatcher = core.ExceptionMatcher

// SeqException is one detected sequence violation.
type SeqException = core.Exception

// NewExceptionMatcher builds the violation detector.
func NewExceptionMatcher(def PatternDef) (*ExceptionMatcher, error) {
	return core.NewExceptionMatcher(def)
}

// ---- RFID workload simulation -------------------------------------------------

// Trace is a generated RFID workload (readings in event-time order).
type Trace = rfid.Trace

// Reading is one raw RFID observation.
type Reading = rfid.Reading

// NoiseModel injects duplicate and missed reads into a trace.
type NoiseModel = rfid.NoiseModel

// PackingConfig / PackingLine generate the Figure 1 packing workload.
type PackingConfig = rfid.PackingConfig

// PackingLine generates the packing workload with ground truth.
func PackingLine(cfg PackingConfig) (*Trace, []rfid.PackingCase) { return rfid.PackingLine(cfg) }

// QualityConfig / QualityLine generate the Example 6 pipeline workload.
type QualityConfig = rfid.QualityConfig

// QualityLine generates the quality-check workload with ground truth.
func QualityLine(cfg QualityConfig) (*Trace, []rfid.QualityItem) { return rfid.QualityLine(cfg) }

// ClinicConfig / ClinicWorkflow generate the Example 5 lab workload.
type ClinicConfig = rfid.ClinicConfig

// ClinicWorkflow generates the clinic workload with ground truth.
func ClinicWorkflow(cfg ClinicConfig) (*Trace, []rfid.ClinicTest) { return rfid.ClinicWorkflow(cfg) }

// DoorConfig / DoorTraffic generate the Example 8 door workload.
type DoorConfig = rfid.DoorConfig

// DoorTraffic generates the door-security workload with ground truth.
func DoorTraffic(cfg DoorConfig) (*Trace, []rfid.DoorEvent) { return rfid.DoorTraffic(cfg) }

// UniformReadings generates a generic high-volume reading stream.
func UniformReadings(streamName string, n, tagCardinality int, period time.Duration, seed int64) *Trace {
	return rfid.UniformReadings(streamName, n, tagCardinality, period, seed)
}

// ---- ALE reporting -------------------------------------------------------------

// ECSpec is an ALE-style event-cycle specification.
type ECSpec = ale.ECSpec

// ReportSpec defines one report within an ECSpec.
type ReportSpec = ale.ReportSpec

// Report is one produced ALE report.
type Report = ale.Report

// EventCycle drives an ECSpec over event time.
type EventCycle = ale.EventCycle

// ALE report set types.
const (
	ReportCurrent   = ale.ReportCurrent
	ReportAdditions = ale.ReportAdditions
	ReportDeletions = ale.ReportDeletions
)

// NewEventCycle compiles an ECSpec; onReport receives reports as cycles
// close.
func NewEventCycle(spec ECSpec, onReport func(Report)) (*EventCycle, error) {
	return ale.NewEventCycle(spec, onReport)
}

// SplitStatements splits a multi-statement script into individual
// statements, respecting single-quoted strings and -- line comments.
func SplitStatements(src string) []string { return esl.SplitStatements(src) }
