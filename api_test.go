package eslev

import (
	"sync/atomic"
	"testing"
	"time"
)

// The public facade end-to-end: declare streams, run a SEQ query, feed
// tuples via concurrent sources through the merger.
func TestFacadeMergerToEngine(t *testing.T) {
	e := New()
	if _, err := e.Exec(`
		CREATE STREAM R1(readerid, tagid, tagtime);
		CREATE STREAM R2(readerid, tagid, tagtime);
	`); err != nil {
		t.Fatal(err)
	}
	var events int32
	if _, err := e.RegisterQuery("containment", `
		SELECT COUNT(R1*), R2.tagid FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS`,
		func(Row) { atomic.AddInt32(&events, 1) }); err != nil {
		t.Fatal(err)
	}

	trace, truth := PackingLine(PackingConfig{Cases: 10, Seed: 13})
	m := NewMerger(trace.Sources(32)...)
	if err := m.Run(e.Feed); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, c := range truth {
		if !c.LateCase && !c.Missed {
			want++
		}
	}
	if int(events) != want {
		t.Fatalf("events = %d, want %d", events, want)
	}
}

func TestFacadeValues(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("numeric equality across kinds")
	}
	if Null.Kind().String() != "NULL" || !Bool(true).Equal(Int(1)) {
		t.Error("value constructors")
	}
	if Time(TS(time.Second)).String() != "1s" {
		t.Error("time rendering")
	}
	s, err := NewSchema("s", Field{Name: "a"}, Field{Name: "ts"})
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuple(s, TS(time.Second), Str("x"), Null)
	if err != nil || tu.TS != TS(time.Second) {
		t.Fatalf("tuple: %v %v", tu, err)
	}
	hb := Heartbeat(TS(5 * time.Second))
	if !hb.IsHeartbeat() || hb.TS != TS(5*time.Second) {
		t.Error("heartbeat item")
	}
}

// The direct Go CEP API (no SQL): the §3.1.1 walkthrough via the facade.
func TestFacadeDirectMatcher(t *testing.T) {
	m, err := NewMatcher(PatternDef{
		Steps: []PatternStep{{Alias: "C1"}, {Alias: "C2"}},
		Mode:  Recent,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSchema("C1", Field{Name: "tagid"}, Field{Name: "tagtime"})
	s2, _ := NewSchema("C2", Field{Name: "tagid"}, Field{Name: "tagtime"})
	t1, _ := NewTuple(s, TS(time.Second), Str("x"), Null)
	t2, _ := NewTuple(s2, TS(2*time.Second), Str("x"), Null)
	t1.Seq, t2.Seq = 1, 2
	if ms, err := m.Push(t1, "C1"); err != nil || len(ms) != 0 {
		t.Fatalf("push C1: %v %v", ms, err)
	}
	ms, err := m.Push(t2, "C2")
	if err != nil || len(ms) != 1 {
		t.Fatalf("push C2: %v %v", ms, err)
	}
	if ms[0].Count(0) != 1 || ms[0].Last(1) != t2 {
		t.Fatalf("match: %v", ms[0])
	}

	xm, err := NewExceptionMatcher(PatternDef{
		Steps: []PatternStep{{Alias: "A"}, {Alias: "B"}},
		Mode:  Consecutive,
	})
	if err != nil {
		t.Fatal(err)
	}
	t3, _ := NewTuple(s2, TS(3*time.Second), Str("x"), Null)
	t3.Seq = 3
	_, exs, err := xm.Push(t3, "B") // B cannot start
	if err != nil || len(exs) != 1 || exs[0].Level != 0 {
		t.Fatalf("exception: %v %v", exs, err)
	}
}

// ALE via the facade.
func TestFacadeALE(t *testing.T) {
	var reports []Report
	ec, err := NewEventCycle(ECSpec{
		Name:     "door",
		Duration: 10 * time.Second,
		Reports:  []ReportSpec{{Name: "all", Type: ReportCurrent}},
	}, func(r Report) { reports = append(reports, r) })
	if err != nil {
		t.Fatal(err)
	}
	ec.Observe("r1", "20.1.5001", TS(time.Second))
	ec.Flush()
	if len(reports) != 1 || reports[0].Count != 1 {
		t.Fatalf("reports = %v", reports)
	}
}

// Every scenario generator is reachable and deterministic via the facade.
func TestFacadeGenerators(t *testing.T) {
	q1, _ := QualityLine(QualityConfig{Items: 5, Seed: 1})
	q2, _ := QualityLine(QualityConfig{Items: 5, Seed: 1})
	if q1.Len() != q2.Len() || q1.Len() == 0 {
		t.Error("QualityLine not deterministic")
	}
	d, _ := DoorTraffic(DoorConfig{Events: 5, Seed: 1})
	if d.Len() == 0 {
		t.Error("DoorTraffic empty")
	}
	c, _ := ClinicWorkflow(ClinicConfig{Tests: 3, Seed: 1})
	if c.Len() == 0 {
		t.Error("ClinicWorkflow empty")
	}
	u := UniformReadings("readings", 10, 3, time.Second, 1)
	if u.Len() != 10 {
		t.Error("UniformReadings size")
	}
	n := NoiseModel{DupProb: 1, DupSpread: time.Millisecond}
	if n.Apply(u, 1).Len() <= u.Len() {
		t.Error("NoiseModel inert")
	}
}
