package eslev

// The benchmark harness for every experiment in DESIGN.md / EXPERIMENTS.md.
// The paper has no quantitative tables, so these benchmarks quantify its
// qualitative claims: per-example throughput of the ESL-EV queries, the
// match blowup across Tuple Pairing Modes, state/cost versus the
// footnote-3 full-history join baseline, and versus the RCEDA-style graph
// event engine. Custom metrics: events/op (matches emitted per pushed
// tuple) and state (tuples retained at the end of the run).

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/esl"
	"repro/internal/rceda"
	"repro/internal/rfid"
	"repro/internal/sqljoin"
	"repro/internal/stream"
)

// feeder replays a trace repeatedly with a monotone time shift so b.N can
// exceed the trace length.
type feeder struct {
	readings []rfid.Reading
	span     stream.Timestamp
	i        int
	shift    stream.Timestamp
}

func newFeeder(tr *rfid.Trace) *feeder {
	last := tr.Readings[len(tr.Readings)-1].At
	return &feeder{readings: tr.Readings, span: last + stream.Timestamp(time.Minute)}
}

// next returns the next reading with its shifted timestamp.
func (f *feeder) next() (rfid.Reading, stream.Timestamp) {
	r := f.readings[f.i]
	at := r.At + f.shift
	f.i++
	if f.i == len(f.readings) {
		f.i = 0
		f.shift += f.span
	}
	return r, at
}

func mustEngine(b *testing.B, ddl string) *esl.Engine {
	b.Helper()
	e := esl.New()
	if _, err := e.Exec(ddl); err != nil {
		b.Fatal(err)
	}
	return e
}

func mustRegister(b *testing.B, e *esl.Engine, sql string, count *int) {
	b.Helper()
	if _, err := e.RegisterQuery("bench", sql, func(esl.Row) { *count++ }); err != nil {
		b.Fatal(err)
	}
}

// ---- EX1: Example 1 duplicate filtering -------------------------------------

func BenchmarkExample1Dedup(b *testing.B) {
	base := rfid.UniformReadings("readings", 5000, 50, 500*time.Millisecond, 1)
	noisy := rfid.NoiseModel{DupProb: 0.5, DupSpread: 600 * time.Millisecond}.Apply(base, 2)
	e := mustEngine(b, `
		CREATE STREAM readings(reader_id, tag_id, read_time);
		CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
		INSERT INTO cleaned_readings
		SELECT * FROM readings AS r1
		WHERE NOT EXISTS
		  (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
		   WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);`)
	kept := 0
	e.Subscribe("cleaned_readings", func(*stream.Tuple) { kept++ })
	f := newFeeder(noisy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, at := f.next()
		if err := e.Push(r.Stream, at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(kept)/float64(b.N), "kept/op")
}

// ---- EX2: Example 2 location tracking ----------------------------------------

func BenchmarkExample2LocationTracking(b *testing.B) {
	e := mustEngine(b, `
		STREAM tag_locations(readerid, tid, tagtime, loc);
		TABLE object_movement(tagid, location, start_time);
		CREATE INDEX ON object_movement(tagid);
		INSERT INTO object_movement
		SELECT tid, loc, tagtime
		FROM tag_locations WHERE NOT EXISTS
		  (SELECT tagid FROM object_movement
		   WHERE tagid = tid AND location = loc);`)
	locs := []string{"dock", "floor", "shelf", "gate"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := fmt.Sprintf("obj-%d", i%200)
		loc := locs[(i/200)%len(locs)] // each object cycles locations
		at := stream.TS(time.Duration(i) * 50 * time.Millisecond)
		if err := e.Push("tag_locations", at,
			stream.Str("rd"), stream.Str(tag), stream.Null, stream.Str(loc)); err != nil {
			b.Fatal(err)
		}
	}
	tbl, _ := e.Store().Get("object_movement")
	b.ReportMetric(float64(tbl.Len()), "rows")
}

// ---- EX3: Example 3 EPC-pattern aggregation -----------------------------------

func BenchmarkExample3EPCAggregation(b *testing.B) {
	e := mustEngine(b, `CREATE STREAM readings(reader_id, tag_id, read_time);`)
	n := 0
	mustRegister(b, e, `
		SELECT count(tag_id) FROM readings WHERE tag_id LIKE '20.%.%'
		AND extract_serial(tag_id) > 5000
		AND extract_serial(tag_id) < 9999`, &n)
	trace := rfid.UniformReadings("readings", 5000, 500, 100*time.Millisecond, 3)
	f := newFeeder(trace)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, at := f.next()
		if err := e.Push("readings", at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- EX6: Example 6 SEQ over four streams, per mode ---------------------------

func benchQualitySeq(b *testing.B, mode string) {
	e := mustEngine(b, `
		CREATE STREAM C1(readerid, tagid, tagtime);
		CREATE STREAM C2(readerid, tagid, tagtime);
		CREATE STREAM C3(readerid, tagid, tagtime);
		CREATE STREAM C4(readerid, tagid, tagtime);`)
	n := 0
	mustRegister(b, e, fmt.Sprintf(`
		SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
		FROM C1, C2, C3, C4
		WHERE SEQ(C1, C2, C3, C4)
		OVER [30 MINUTES PRECEDING C4] MODE %s
		AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid`, mode), &n)
	trace, _ := rfid.QualityLine(rfid.QualityConfig{Items: 2000, DropRate: 0.1, Seed: 4})
	f := newFeeder(trace)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, at := f.next()
		if err := e.Push(r.Stream, at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)/float64(b.N), "events/op")
}

func BenchmarkExample6SEQ(b *testing.B) {
	for _, mode := range []string{"UNRESTRICTED", "RECENT", "CHRONICLE"} {
		b.Run(mode, func(b *testing.B) { benchQualitySeq(b, mode) })
	}
}

// ---- FIG1/EX7: star-sequence containment --------------------------------------

func BenchmarkExample7Containment(b *testing.B) {
	e := mustEngine(b, `
		CREATE STREAM R1(readerid, tagid, tagtime);
		CREATE STREAM R2(readerid, tagid, tagtime);`)
	n := 0
	mustRegister(b, e, `
		SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
		FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
		AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`, &n)
	trace, _ := rfid.PackingLine(rfid.PackingConfig{Cases: 1000, Seed: 5})
	f := newFeeder(trace)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, at := f.next()
		if err := e.Push(r.Stream, at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)/float64(b.N), "events/op")
}

// ---- EX5: EXCEPTION_SEQ clinic workflow ----------------------------------------

func BenchmarkExample5ExceptionSeq(b *testing.B) {
	e := mustEngine(b, `
		CREATE STREAM A1(readerid, tagid, tagtime);
		CREATE STREAM A2(readerid, tagid, tagtime);
		CREATE STREAM A3(readerid, tagid, tagtime);`)
	n := 0
	mustRegister(b, e, `
		SELECT exception.level, exception.reason, A1.tagid
		FROM A1, A2, A3
		WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]
		AND A1.tagid = A2.tagid AND A1.tagid = A3.tagid`, &n)
	trace, _ := rfid.ClinicWorkflow(rfid.ClinicConfig{
		Tests: 500, Staff: []string{"a", "b", "c", "d"},
		WrongOrderEvery: 5, StallEvery: 7, Seed: 6})
	f := newFeeder(trace)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, at := f.next()
		if err := e.Push(r.Stream, at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)/float64(b.N), "alerts/op")
}

// ---- EX8: theft detection (PRECEDING AND FOLLOWING) ----------------------------

func BenchmarkExample8Theft(b *testing.B) {
	e := mustEngine(b, `CREATE STREAM tag_readings(tagid, tagtype, tagtime);`)
	n := 0
	mustRegister(b, e, `
		SELECT item.tagid
		FROM tag_readings AS item
		WHERE item.tagtype = 'item' AND NOT EXISTS
		  (SELECT * FROM tag_readings AS person
		   OVER [1 MINUTES PRECEDING AND FOLLOWING item]
		   WHERE person.tagtype = 'person')`, &n)
	trace, _ := rfid.DoorTraffic(rfid.DoorConfig{Events: 2000, TheftEvery: 10, Seed: 7})
	tuples := trace.DoorTuples("tag_readings")
	span := tuples[len(tuples)-1].TS + stream.Timestamp(time.Hour)
	b.ResetTimer()
	var shift stream.Timestamp
	for i := 0; i < b.N; i++ {
		tu := tuples[i%len(tuples)]
		at := tu.TS + shift
		if i%len(tuples) == len(tuples)-1 {
			shift += span
		}
		if err := e.Push("tag_readings", at, tu.Get(0), tu.Get(1), stream.Null); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- MODES: the core matcher on the walkthrough workload -----------------------

var qcSchemas = func() map[string]*stream.Schema {
	m := map[string]*stream.Schema{}
	for _, n := range []string{"C1", "C2", "C3", "C4"} {
		m[n] = stream.MustSchema(n,
			stream.Field{Name: "readerid"},
			stream.Field{Name: "tagid"},
			stream.Field{Name: "tagtime"})
	}
	return m
}()

// walkthroughGen yields the §3.1.1 history shape — two C1, one C2, two C3,
// one C2, one C4 per round — with strictly increasing timestamps forever.
type walkthroughGen struct {
	i  int
	at stream.Timestamp
}

var walkthroughOrder = []string{"C1", "C1", "C2", "C3", "C3", "C2", "C4"}

func (g *walkthroughGen) next() *stream.Tuple {
	s := walkthroughOrder[g.i%len(walkthroughOrder)]
	g.i++
	g.at = g.at.Add(time.Second)
	return stream.MustTuple(qcSchemas[s], g.at, stream.Str(s), stream.Str("x"), stream.Null)
}

func BenchmarkPairingModes(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeUnrestricted, core.ModeRecent, core.ModeChronicle, core.ModeConsecutive} {
		b.Run(mode.String(), func(b *testing.B) {
			def := core.Def{Steps: []core.Step{{Alias: "C1"}, {Alias: "C2"}, {Alias: "C3"}, {Alias: "C4"}}, Mode: mode}
			// A short window bounds UNRESTRICTED state, as the paper
			// prescribes for high-volume streams; even so, events/op shows
			// the combinatorial gap between the modes.
			def.Window = &core.WindowAnchor{Span: 30 * time.Second, Step: 3}
			m := core.MustMatcher(def)
			gen := &walkthroughGen{}
			events := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tu := gen.next()
				ms, err := m.Push(tu, tu.Schema.Name())
				if err != nil {
					b.Fatal(err)
				}
				events += len(ms)
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
			b.ReportMetric(float64(m.StateSize()), "state")
		})
	}
}

// ---- PERF-B: UNRESTRICTED match blowup vs per-step fan-in ----------------------

func BenchmarkModeBlowup(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		for _, mode := range []core.Mode{core.ModeUnrestricted, core.ModeRecent, core.ModeChronicle} {
			b.Run(fmt.Sprintf("fanin=%d/%s", k, mode), func(b *testing.B) {
				def := core.Def{Steps: []core.Step{{Alias: "C1"}, {Alias: "C2"}, {Alias: "C3"}}, Mode: mode}
				def.Window = &core.WindowAnchor{Span: time.Hour, Step: 2}
				m := core.MustMatcher(def)
				// Each round: k C1s, k C2s, then one C3 (the terminal),
				// followed by a gap that expires the window. Generated
				// lazily so timestamps stay monotone for any b.N.
				at := stream.TS(0)
				pos := 0
				roundLen := 2*k + 1
				nextTuple := func() *stream.Tuple {
					var name string
					switch {
					case pos < k:
						name = "C1"
					case pos < 2*k:
						name = "C2"
					default:
						name = "C3"
					}
					at = at.Add(time.Second)
					tu := stream.MustTuple(qcSchemas[name], at, stream.Str(name), stream.Str("x"), stream.Null)
					pos++
					if pos == roundLen {
						pos = 0
						at = at.Add(2 * time.Hour) // expire the window between rounds
					}
					return tu
				}
				events := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tu := nextTuple()
					ms, err := m.Push(tu, tu.Schema.Name())
					if err != nil {
						b.Fatal(err)
					}
					events += len(ms)
				}
				b.StopTimer()
				b.ReportMetric(float64(events)/float64(b.N), "events/op")
			})
		}
	}
}

// ---- PERF-A: windowed/moded SEQ vs the footnote-3 full-history join ------------

func BenchmarkSeqVsJoinBaseline(b *testing.B) {
	// Alternating C1, C2, C3 arrivals (every C3 triggers evaluation) with
	// strictly increasing timestamps for any b.N.
	mkGen := func() func() *stream.Tuple {
		at := stream.TS(0)
		i := 0
		return func() *stream.Tuple {
			s := []string{"C1", "C2", "C3"}[i%3]
			i++
			at = at.Add(time.Second)
			return stream.MustTuple(qcSchemas[s], at, stream.Str(s), stream.Str("x"), stream.Null)
		}
	}
	b.Run("eslev-windowed-recent", func(b *testing.B) {
		def := core.Def{
			Steps:  []core.Step{{Alias: "C1"}, {Alias: "C2"}, {Alias: "C3"}},
			Mode:   core.ModeRecent,
			Window: &core.WindowAnchor{Span: 10 * time.Second, Step: 2},
		}
		m := core.MustMatcher(def)
		gen := mkGen()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tu := gen()
			if _, err := m.Push(tu, tu.Schema.Name()); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(m.StateSize()), "state")
	})
	b.Run("join-full-history", func(b *testing.B) {
		j, err := sqljoin.New("C1", "C2", "C3")
		if err != nil {
			b.Fatal(err)
		}
		// The join baseline keeps the ever-growing full history, as
		// footnote 3 implies — cost per tuple grows with b.N. Cap the
		// retained history growth by restarting the evaluator every 4096
		// tuples so the benchmark terminates; the cmd/experiments series
		// measures the uncapped growth explicitly.
		gen := mkGen()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%4096 == 0 && i > 0 {
				b.StopTimer()
				j, _ = sqljoin.New("C1", "C2", "C3")
				b.StartTimer()
			}
			tu := gen()
			j.Push(tu.Schema.Name(), tu)
		}
		b.StopTimer()
		b.ReportMetric(float64(j.StateSize()), "state")
	})
}

// ---- PERF-C: ESL-EV vs the RCEDA-style graph engine ----------------------------

func BenchmarkEslevVsRceda(b *testing.B) {
	trace, _ := rfid.PackingLine(rfid.PackingConfig{Cases: 2000, Seed: 9})
	b.Run("eslev-chronicle-star", func(b *testing.B) {
		def := core.Def{
			Steps: []core.Step{
				{Alias: "R1", Star: true, MaxGap: time.Second},
				{Alias: "R2"},
			},
			Mode:        core.ModeChronicle,
			ExpireAfter: 10 * time.Second,
		}
		m := core.MustMatcher(def)
		f := newFeeder(trace)
		events := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, at := f.next()
			tu := stream.MustTuple(qcSchemas["C1"], at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null)
			ms, err := m.Push(tu, r.Stream)
			if err != nil {
				b.Fatal(err)
			}
			events += len(ms)
			m.Advance(at)
		}
		b.StopTimer()
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
		b.ReportMetric(float64(m.StateSize()), "state")
	})
	b.Run("rceda-graph", func(b *testing.B) {
		// RCEDA has no star operator: the closest graph is SEQ(R1, R2)
		// under chronicle consumption, which pairs ONE product with the
		// case and cannot express the repetition or the gap constraint.
		eng := rceda.NewEngine()
		r1 := eng.Primitive("R1", nil)
		r2 := eng.Primitive("R2", nil)
		seq := eng.Seq(r1, r2, rceda.Chronicle)
		events := 0
		eng.AddRule(&rceda.Rule{Node: seq, Action: func(*rceda.Instance) { events++ }})
		f := newFeeder(trace)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, at := f.next()
			tu := stream.MustTuple(qcSchemas["C1"], at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null)
			eng.Push(r.Stream, tu)
		}
		b.StopTimer()
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
		b.ReportMetric(float64(eng.StateSize()), "state")
	})
}

// ---- ancillary: parser and merger throughput ------------------------------------

func BenchmarkParseExample7(b *testing.B) {
	src := `
		SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
		FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
		AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := esl.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergerThroughput(b *testing.B) {
	trace, _ := rfid.QualityLine(rfid.QualityConfig{Items: 5000, Seed: 10})
	b.ResetTimer()
	b.ReportAllocs()
	processed := 0
	for processed < b.N {
		b.StopTimer()
		sources := trace.Sources(256)
		b.StartTimer()
		m := stream.NewMerger(sources...)
		if err := m.Run(func(string, stream.Item) error { processed++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSchema caches reading schemas by stream name for ablation workloads.
var benchSchemaCache = map[string]*stream.Schema{}

func benchSchema(name string) *stream.Schema {
	s, ok := benchSchemaCache[name]
	if !ok {
		s = stream.MustSchema(name,
			stream.Field{Name: "readerid"},
			stream.Field{Name: "tagid"},
			stream.Field{Name: "tagtime"})
		benchSchemaCache[name] = s
	}
	return s
}

// ---- ablations: design choices called out in DESIGN.md ---------------------------

// Partitioned matching (planner-derived keys) vs evaluating the same tag
// equality as a residual bind-time predicate.
func BenchmarkPartitioningAblation(b *testing.B) {
	trace, _ := rfid.QualityLine(rfid.QualityConfig{Items: 2000, Seed: 11})
	run := func(b *testing.B, def core.Def) {
		m := core.MustMatcher(def)
		f := newFeeder(trace)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, at := f.next()
			tu := stream.MustTuple(qcSchemas[r.Stream], at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null)
			if _, err := m.Push(tu, r.Stream); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(m.StateSize()), "state")
	}
	steps := func() []core.Step {
		return []core.Step{{Alias: "C1"}, {Alias: "C2"}, {Alias: "C3"}, {Alias: "C4"}}
	}
	b.Run("partitioned", func(b *testing.B) {
		def := core.Def{Steps: steps(), Mode: core.ModeChronicle,
			Window: &core.WindowAnchor{Span: 30 * time.Minute, Step: 3}}
		for i := range def.Steps {
			def.Steps[i].Key = func(t *stream.Tuple) stream.Value { return t.Field("tagid") }
		}
		run(b, def)
	})
	b.Run("residual-pred", func(b *testing.B) {
		def := core.Def{Steps: steps(), Mode: core.ModeChronicle,
			Window: &core.WindowAnchor{Span: 30 * time.Minute, Step: 3}}
		def.Pred = func(partial *core.Match, step int, t *stream.Tuple) bool {
			if step == 0 {
				return true
			}
			return partial.Last(step - 1).Field("tagid").Equal(t.Field("tagid"))
		}
		run(b, def)
	})
}

// The MaxGap fast path vs the same constraint as a generic previous-operator
// predicate.
func BenchmarkMaxGapAblation(b *testing.B) {
	trace, _ := rfid.PackingLine(rfid.PackingConfig{Cases: 2000, Seed: 12})
	run := func(b *testing.B, def core.Def) {
		m := core.MustMatcher(def)
		f := newFeeder(trace)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, at := f.next()
			tu := stream.MustTuple(benchSchema(r.Stream), at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null)
			if _, err := m.Push(tu, r.Stream); err != nil {
				b.Fatal(err)
			}
			m.Advance(at)
		}
	}
	b.Run("maxgap-fastpath", func(b *testing.B) {
		run(b, core.Def{
			Steps: []core.Step{
				{Alias: "R1", Star: true, MaxGap: time.Second},
				{Alias: "R2"},
			},
			Mode: core.ModeChronicle, ExpireAfter: 10 * time.Second,
		})
	})
	b.Run("generic-pred", func(b *testing.B) {
		run(b, core.Def{
			Steps: []core.Step{
				{Alias: "R1", Star: true},
				{Alias: "R2"},
			},
			Mode: core.ModeChronicle, ExpireAfter: 10 * time.Second,
			Pred: func(partial *core.Match, step int, t *stream.Tuple) bool {
				if step != 0 {
					return true
				}
				last := partial.Last(0)
				return last == nil || t.TS.Sub(last.TS) <= time.Second
			},
		})
	})
}

// SQL-bodied UDA vs the equivalent built-in aggregate.
func BenchmarkUDAOverhead(b *testing.B) {
	run := func(b *testing.B, ddl, query string) {
		e := mustEngine(b, `CREATE STREAM vitals(patient, bp, ts);`+ddl)
		n := 0
		mustRegister(b, e, query, &n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			at := stream.TS(time.Duration(i) * 100 * time.Millisecond)
			if err := e.Push("vitals", at, stream.Str("p"), stream.Int(int64(i%200)), stream.Null); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("builtin-max", func(b *testing.B) {
		run(b, ``, `SELECT max(bp) FROM vitals`)
	})
	b.Run("sql-uda-max", func(b *testing.B) {
		run(b, `
			CREATE AGGREGATE mymax(nextval INT) : INT {
				TABLE state(hi INT);
				INITIALIZE : { INSERT INTO state VALUES (nextval); }
				ITERATE : { UPDATE state SET hi = nextval WHERE nextval > hi; }
				TERMINATE : { INSERT INTO RETURN SELECT hi FROM state; }
			};`, `SELECT mymax(bp) FROM vitals`)
	})
}

// ---- Sharded scaling: the partition-parallel engine ---------------------------

// benchSharded replays a keyed workload through a ShardedEngine at a given
// shard count. The container this repo is benchmarked in is single-core
// (see EXPERIMENTS.md), so shard counts > 1 measure the coordination
// overhead the architecture adds when no extra cores exist; on multi-core
// hardware the same benchmark exhibits the scaling curve.
func benchShardedEX6(b *testing.B, shards int) {
	e := NewSharded(shards)
	defer e.Close()
	if _, err := e.Exec(`
		CREATE STREAM C1(readerid, tagid, tagtime);
		CREATE STREAM C2(readerid, tagid, tagtime);
		CREATE STREAM C3(readerid, tagid, tagtime);
		CREATE STREAM C4(readerid, tagid, tagtime);`); err != nil {
		b.Fatal(err)
	}
	var n int64
	if _, err := e.RegisterQuery("bench", `
		SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
		FROM C1, C2, C3, C4
		WHERE SEQ(C1, C2, C3, C4)
		OVER [30 MINUTES PRECEDING C4] MODE CHRONICLE
		AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid`,
		func(esl.Row) { atomic.AddInt64(&n, 1) }); err != nil {
		b.Fatal(err)
	}
	trace, _ := rfid.QualityLine(rfid.QualityConfig{Items: 2000, DropRate: 0.1, Seed: 4})
	f := newFeeder(trace)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, at := f.next()
		if err := e.Push(r.Stream, at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(atomic.LoadInt64(&n))/float64(b.N), "events/op")
}

// benchShardedContainment runs a multi-line variant of the Figure 1
// containment query: 8 packing lines keyed by lineid, each staging cases of
// three products. Intra-line product gaps stay under the 1-second chain
// bound, so every case yields a containment event.
func benchShardedContainment(b *testing.B, shards int) {
	const lines = 8
	e := NewSharded(shards)
	defer e.Close()
	if _, err := e.Exec(`
		CREATE STREAM R1(lineid, tagid, tagtime);
		CREATE STREAM R2(lineid, tagid, tagtime);`); err != nil {
		b.Fatal(err)
	}
	var n int64
	if _, err := e.RegisterQuery("bench", `
		SELECT R2.lineid, COUNT(R1*), R2.tagid, R2.tagtime
		FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R1.lineid = R2.lineid
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
		AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`,
		func(esl.Row) { atomic.AddInt64(&n, 1) }); err != nil {
		b.Fatal(err)
	}
	lineNames := make([]string, lines)
	for l := range lineNames {
		lineNames[l] = fmt.Sprintf("L%d", l)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := lineNames[i%lines]
		pos := (i / lines) % 4 // three products then the case read
		at := stream.TS(time.Duration(i) * 100 * time.Millisecond)
		var err error
		if pos < 3 {
			err = e.Push("R1", at, stream.Str(line), stream.Str(fmt.Sprintf("p%d", i)), stream.Time(at))
		} else {
			err = e.Push("R2", at, stream.Str(line), stream.Str(fmt.Sprintf("case%d", i)), stream.Time(at))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(atomic.LoadInt64(&n))/float64(b.N), "events/op")
}

func BenchmarkShardedScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("EX6/shards=%d", shards), func(b *testing.B) {
			benchShardedEX6(b, shards)
		})
		b.Run(fmt.Sprintf("Containment/shards=%d", shards), func(b *testing.B) {
			benchShardedContainment(b, shards)
		})
	}
}

// BenchmarkShardedBatchIngest measures the batched ingestion path head to
// head against per-tuple pushes on the same keyed EX6 workload.
func BenchmarkShardedBatchIngest(b *testing.B) {
	for _, batch := range []int{1, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			e := NewSharded(2)
			defer e.Close()
			if _, err := e.Exec(`
				CREATE STREAM C1(readerid, tagid, tagtime);
				CREATE STREAM C2(readerid, tagid, tagtime);
				CREATE STREAM C3(readerid, tagid, tagtime);
				CREATE STREAM C4(readerid, tagid, tagtime);`); err != nil {
				b.Fatal(err)
			}
			if _, err := e.RegisterQuery("bench", `
				SELECT C1.tagid FROM C1, C2, C3, C4
				WHERE SEQ(C1, C2, C3, C4)
				AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid`,
				func(esl.Row) {}); err != nil {
				b.Fatal(err)
			}
			e.SetBatchSize(batch)
			trace, _ := rfid.QualityLine(rfid.QualityConfig{Items: 2000, DropRate: 0.1, Seed: 4})
			f := newFeeder(trace)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, at := f.next()
				if err := e.Push(r.Stream, at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Drain(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---- multi-query fan-out: the shared routing index ---------------------------

// BenchmarkMultiQueryFanout registers N keyed SEQ queries, each pinned to
// its own reader id, and drives a feed whose reader ids cycle so every
// tuple is relevant to exactly one query. With the routing index on,
// per-tuple work stays near-flat as N grows; with it off (scan-all
// dispatch), work grows linearly with N. `eslev bench -multiquery` runs
// the same sweep as a wall-clock artifact (BENCH_MULTIQUERY.json).
func BenchmarkMultiQueryFanout(b *testing.B) {
	for _, nQueries := range []int{1, 4, 16, 64, 256} {
		for _, route := range []bool{true, false} {
			b.Run(fmt.Sprintf("queries=%d/route=%v", nQueries, route), func(b *testing.B) {
				var opts []esl.Option
				if !route {
					opts = append(opts, esl.WithoutRouteIndex())
				}
				e := esl.New(opts...)
				if _, err := e.Exec(`
					CREATE STREAM C1(readerid, tagid, tagtime);
					CREATE STREAM C2(readerid, tagid, tagtime);`); err != nil {
					b.Fatal(err)
				}
				matches := 0
				for qi := 0; qi < nQueries; qi++ {
					reader := fmt.Sprintf("R%d", qi)
					sql := fmt.Sprintf(`
						SELECT C2.tagid, C2.tagtime FROM C1, C2
						WHERE SEQ(C1, C2) OVER [1 SECONDS PRECEDING C2]
						AND C1.readerid = '%s' AND C2.readerid = '%s'
						AND C1.tagid = C2.tagid`, reader, reader)
					if _, err := e.RegisterQuery(fmt.Sprintf("q%03d", qi), sql,
						func(esl.Row) { matches++ }); err != nil {
						b.Fatal(err)
					}
				}
				const tags = 16
				schemas := map[string]*stream.Schema{}
				for _, s := range []string{"C1", "C2"} {
					schemas[s], _ = e.StreamSchema(s)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pair := i / 2
					name := "C1"
					if i%2 == 1 {
						name = "C2"
					}
					at := stream.TS(time.Duration(i+1) * 10 * time.Millisecond)
					if err := e.Push(name, at,
						stream.Str(fmt.Sprintf("R%d", pair%nQueries)),
						stream.Str(fmt.Sprintf("t%d", pair%tags)),
						stream.Null); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(matches)/float64(b.N), "events/op")
			})
		}
	}
}

// ---- vectorized execution ---------------------------------------------------

// BenchmarkFusedFilterProject measures the fused WHERE+projection kernel on
// a stateless stream-to-stream query: tuple-at-a-time versus batch sizes
// that let the kernel amortize the environment and output arena. Run with
// -benchmem; the batch path's allocs/op is the headline number.
func BenchmarkFusedFilterProject(b *testing.B) {
	setup := func(b *testing.B) (*esl.Engine, *stream.Schema) {
		e := mustEngine(b, `
			CREATE STREAM readings(reader_id, tag_id, read_time);
			INSERT INTO hot SELECT tag_id, reader_id FROM readings WHERE tag_id LIKE 'a%';`)
		matched := 0
		if err := e.Subscribe("hot", func(*stream.Tuple) { matched++ }); err != nil {
			b.Fatal(err)
		}
		schema, _ := e.StreamSchema("readings")
		return e, schema
	}
	tags := [...]stream.Value{stream.Str("a1"), stream.Str("b2"), stream.Str("a3"), stream.Str("c4")}

	b.Run("tuple", func(b *testing.B) {
		e, _ := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Push("readings", stream.Timestamp(i+1), stream.Str("r1"), tags[i%len(tags)], stream.Null); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, batch := range []int{32, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			e, schema := setup(b)
			buf := make([]stream.Item, 0, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp, err := stream.NewTuple(schema, stream.Timestamp(i+1), stream.Str("r1"), tags[i%len(tags)], stream.Null)
				if err != nil {
					b.Fatal(err)
				}
				buf = append(buf, stream.Of(tp))
				if len(buf) == batch {
					if err := e.PushBatch(buf); err != nil {
						b.Fatal(err)
					}
					buf = buf[:0]
				}
			}
		})
	}
}

// BenchmarkSerialBatchIngest drives the EX6 keyed SEQ workload through the
// plain (unsharded) engine's batch path at several batch sizes — the
// single-replica view of what each shard worker executes.
func BenchmarkSerialBatchIngest(b *testing.B) {
	for _, batch := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			e := mustEngine(b, `
				CREATE STREAM C1(readerid, tagid, tagtime);
				CREATE STREAM C2(readerid, tagid, tagtime);
				CREATE STREAM C3(readerid, tagid, tagtime);
				CREATE STREAM C4(readerid, tagid, tagtime);`)
			matches := 0
			mustRegister(b, e, `
				SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
				FROM C1, C2, C3, C4
				WHERE SEQ(C1, C2, C3, C4)
				OVER [30 MINUTES PRECEDING C4] MODE CHRONICLE
				AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid`, &matches)
			trace, _ := rfid.QualityLine(rfid.QualityConfig{Items: 2000, DropRate: 0.1, Seed: 4})
			f := newFeeder(trace)
			schemas := map[string]*stream.Schema{}
			for _, s := range []string{"C1", "C2", "C3", "C4"} {
				schemas[s], _ = e.StreamSchema(s)
			}
			buf := make([]stream.Item, 0, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, at := f.next()
				tp, err := stream.NewTuple(schemas[r.Stream], at, stream.Str(r.ReaderID), stream.Str(r.TagID), stream.Null)
				if err != nil {
					b.Fatal(err)
				}
				buf = append(buf, stream.Of(tp))
				if len(buf) == batch {
					if err := e.PushBatch(buf); err != nil {
						b.Fatal(err)
					}
					buf = buf[:0]
				}
			}
			b.ReportMetric(float64(matches)/float64(b.N), "events/op")
		})
	}
}
