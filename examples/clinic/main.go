// Clinic workflow enforcement: the paper's Example 5. A lab test requires
// operations A -> B -> C in order, finishing within one hour of A. The
// EXCEPTION_SEQ operator (a FOLLOWING window anchored on the first step)
// raises an alert for wrong-order operations, invalid starts, and timeouts
// detected by Active Expiration — i.e. without any new reading arriving.
package main

import (
	"fmt"
	"log"
	"time"

	eslev "repro"
)

func main() {
	trace, truth := eslev.ClinicWorkflow(eslev.ClinicConfig{
		Tests:           9,
		Staff:           []string{"nurse-a", "nurse-b", "nurse-c"},
		WrongOrderEvery: 4,
		StallEvery:      3,
		Seed:            17,
	})

	e := eslev.New()
	if _, err := e.Exec(`
		CREATE STREAM A1(readerid, tagid, tagtime);
		CREATE STREAM A2(readerid, tagid, tagtime);
		CREATE STREAM A3(readerid, tagid, tagtime);
	`); err != nil {
		log.Fatal(err)
	}

	alerts := 0
	if _, err := e.RegisterQuery("workflow-guard", `
		SELECT exception.level, exception.reason, exception.at, A1.tagid
		FROM A1, A2, A3
		WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]
		AND A1.tagid = A2.tagid AND A1.tagid = A3.tagid`,
		func(r eslev.Row) {
			alerts++
			fmt.Printf("ALERT  staff=%-8v level=%v reason=%-14v at=%v\n",
				r.Get("tagid"), r.Get("level"), r.Get("reason"), r.Get("at"))
		},
	); err != nil {
		log.Fatal(err)
	}

	if err := trace.Feed(e.PushTuple); err != nil {
		log.Fatal(err)
	}
	// Drive event time past the last deadline so stalled tests expire even
	// though no further reading arrives (Active Expiration).
	if err := e.Heartbeat(e.Now().Add(2 * time.Hour)); err != nil {
		log.Fatal(err)
	}

	bad := 0
	for _, tst := range truth {
		if tst.WrongOrder || tst.Stalled {
			bad++
		}
	}
	fmt.Printf("\n%d tests generated, %d with violations, %d alerts raised\n",
		len(truth), bad, alerts)
	if alerts < bad {
		log.Fatal("missed violations")
	}
}
