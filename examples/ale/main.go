// ALE reporting: the Application Level Events interface the paper's
// introduction cites. A dock-door ECSpec runs 10-second event cycles over
// the raw reading stream, filtering tags with the EPC pattern from the
// paper ("20.*.[5000-9999]") and reporting the current set, additions and
// deletions per cycle — alongside the equivalent ESL-EV aggregation query
// (Example 3).
package main

import (
	"fmt"
	"log"
	"time"

	eslev "repro"
)

func main() {
	trace := eslev.UniformReadings("readings", 60, 12, 2*time.Second, 31)

	// ALE side: event cycles with pattern filtering.
	ec, err := eslev.NewEventCycle(eslev.ECSpec{
		Name:     "dock-door",
		Duration: 10 * time.Second,
		Reports: []eslev.ReportSpec{
			{Name: "company20", Type: eslev.ReportCurrent, IncludePatterns: []string{"20.*.[5000-9999]"}},
			{Name: "arrived", Type: eslev.ReportAdditions},
			{Name: "left", Type: eslev.ReportDeletions, CountOnly: true},
		},
	}, func(r eslev.Report) {
		fmt.Printf("cycle %d  %-10s %-9s count=%d %v\n", r.Cycle, r.Spec, r.Type, r.Count, r.Tags)
	})
	if err != nil {
		log.Fatal(err)
	}

	// ESL-EV side: the paper's Example 3 as a continuous query over the
	// same stream.
	e := eslev.New()
	if _, err := e.Exec(`CREATE STREAM readings(reader_id, tag_id, read_time);`); err != nil {
		log.Fatal(err)
	}
	var running int64
	if _, err := e.RegisterQuery("epc-count", `
		SELECT count(tag_id) FROM readings WHERE tag_id LIKE '20.%.%'
		AND extract_serial(tag_id) > 5000
		AND extract_serial(tag_id) < 9999`,
		func(r eslev.Row) { running, _ = r.Vals[0].AsInt() },
	); err != nil {
		log.Fatal(err)
	}

	for _, tu := range trace.Tuples() {
		ec.Observe(tu.Field("reader_id").String(), tu.Field("tag_id").String(), tu.TS)
		if err := e.PushTuple("readings", tu); err != nil {
			log.Fatal(err)
		}
	}
	ec.Flush()

	fmt.Printf("\nESL-EV running count of matching readings (Example 3): %d\n", running)
}
