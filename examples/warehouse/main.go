// Warehouse packing: the paper's Figure 1 / Example 7 scenario. Reader r1
// scans products being packed; reader r2 scans packing cases. The star
// sequence SEQ(R1*, R2) under CHRONICLE pairing groups each maximal run of
// product readings (inter-arrival gap <= 1s) with the case reading that
// follows within 5s, reporting the containment relationship.
//
// The workload comes from the deterministic packing-line simulator, so the
// program can check the query's output against ground truth.
package main

import (
	"fmt"
	"log"

	eslev "repro"
)

func main() {
	trace, truth := eslev.PackingLine(eslev.PackingConfig{
		Cases:         8,
		ItemsPerCase:  3,
		Seed:          7,
		LateCaseEvery: 4, // every 4th case is scanned too late (> 5s)
	})

	e := eslev.New()
	if _, err := e.Exec(`
		CREATE STREAM R1(readerid, tagid, tagtime);
		CREATE STREAM R2(readerid, tagid, tagtime);
	`); err != nil {
		log.Fatal(err)
	}

	detected := map[string]int64{}
	if _, err := e.RegisterQuery("containment", `
		SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
		FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
		AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`,
		func(r eslev.Row) {
			n, _ := r.Get("count_R1").AsInt()
			caseTag := r.Get("tagid").String()
			detected[caseTag] = n
			fmt.Printf("PACKED   %-10s items=%d  first-item@%s  case@%s\n",
				caseTag, n, r.Get("first_tagtime"), r.Get("tagtime"))
		},
	); err != nil {
		log.Fatal(err)
	}

	// The per-item variant (§3.1.2 multi-return): list every product that
	// went into each case.
	if _, err := e.RegisterQuery("manifest", `
		SELECT R1.tagid, R2.tagid AS case_tag
		FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
		AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`,
		func(r eslev.Row) {
			fmt.Printf("  item %-14s -> %s\n", r.Get("tagid"), r.Get("case_tag"))
		},
	); err != nil {
		log.Fatal(err)
	}

	if err := trace.Feed(e.PushTuple); err != nil {
		log.Fatal(err)
	}

	// Compare with ground truth.
	fmt.Println("\n--- reconciliation ---")
	ok := true
	for _, c := range truth {
		got, found := detected[c.CaseTag]
		switch {
		case c.LateCase && !found:
			fmt.Printf("%-10s correctly skipped (case scan exceeded 5s deadline)\n", c.CaseTag)
		case !c.LateCase && found && int(got) == len(c.Items):
			fmt.Printf("%-10s OK (%d items)\n", c.CaseTag, got)
		default:
			ok = false
			fmt.Printf("%-10s MISMATCH: truth=%d late=%v detected=%d found=%v\n",
				c.CaseTag, len(c.Items), c.LateCase, got, found)
		}
	}
	if !ok {
		log.Fatal("containment detection disagreed with ground truth")
	}
	fmt.Println("all cases reconciled")
}
