// Door security: the paper's Example 8 / §3.2. Items and personnel pass a
// door reader on one stream, distinguished by tagtype. An item with no
// person detected within one minute BEFORE OR AFTER its exit is a
// potential theft — a sliding window synchronized across the sub-query
// boundary, with both PRECEDING and FOLLOWING extents, so the decision is
// deferred until the window closes.
package main

import (
	"fmt"
	"log"
	"time"

	eslev "repro"
)

func main() {
	trace, truth := eslev.DoorTraffic(eslev.DoorConfig{
		Events:     12,
		Tau:        time.Minute,
		TheftEvery: 4,
		Seed:       23,
	})

	e := eslev.New()
	if _, err := e.Exec(`CREATE STREAM tag_readings(tagid, tagtype, tagtime);`); err != nil {
		log.Fatal(err)
	}

	var alerts []string
	if _, err := e.RegisterQuery("theft-guard", `
		SELECT item.tagid, item.tagtime
		FROM tag_readings AS item
		WHERE item.tagtype = 'item' AND NOT EXISTS
		  (SELECT * FROM tag_readings AS person
		   OVER [1 MINUTES PRECEDING AND FOLLOWING item]
		   WHERE person.tagtype = 'person')`,
		func(r eslev.Row) {
			alerts = append(alerts, r.Get("tagid").String())
			fmt.Printf("THEFT?  item=%-12s exited at %v with no person within 1 minute\n",
				r.Get("tagid"), r.Get("tagtime"))
		},
	); err != nil {
		log.Fatal(err)
	}

	for _, tu := range trace.DoorTuples("tag_readings") {
		if err := e.PushTuple("tag_readings", tu); err != nil {
			log.Fatal(err)
		}
	}
	// Close the trailing FOLLOWING windows.
	if err := e.Heartbeat(e.Now().Add(5 * time.Minute)); err != nil {
		log.Fatal(err)
	}

	want := map[string]bool{}
	for _, ev := range truth {
		if ev.Theft {
			want[ev.ItemTag] = true
		}
	}
	fmt.Printf("\n%d passages, %d thefts staged, %d alerts\n", len(truth), len(want), len(alerts))
	if len(alerts) != len(want) {
		log.Fatal("alert count disagrees with ground truth")
	}
	for _, tag := range alerts {
		if !want[tag] {
			log.Fatalf("false alert for %s", tag)
		}
	}
	fmt.Println("all alerts reconciled with ground truth")
}
