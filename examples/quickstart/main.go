// Quickstart: declare RFID streams, clean duplicates with a windowed NOT
// EXISTS transducer (the paper's Example 1), and detect a two-step tag
// sequence with the SEQ operator — all in ~40 lines of ESL-EV.
package main

import (
	"fmt"
	"log"
	"time"

	eslev "repro"
)

func main() {
	e := eslev.New()

	if _, err := e.Exec(`
		CREATE STREAM readings(reader_id, tag_id, read_time);
		CREATE STREAM cleaned(reader_id, tag_id, read_time);
		CREATE STREAM shipped(reader_id, tag_id, read_time);

		-- Example 1: duplicate elimination with a 1-second sliding window.
		INSERT INTO cleaned
		SELECT * FROM readings AS r1
		WHERE NOT EXISTS
		  (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
		   WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
	`); err != nil {
		log.Fatal(err)
	}

	// A continuous SEQ query over the cleaned stream: a tag seen at the
	// dock and then at the gate within 10 seconds has shipped.
	if _, err := e.RegisterQuery("shipping", `
		SELECT dock.tag_id, dock.read_time, gate.read_time
		FROM cleaned AS dock, cleaned AS gate
		WHERE SEQ(dock, gate) OVER [10 SECONDS PRECEDING gate] MODE CHRONICLE
		AND dock.tag_id = gate.tag_id
		AND dock.reader_id = 'dock' AND gate.reader_id = 'gate'`,
		func(r eslev.Row) { fmt.Printf("SHIPPED  %s\n", r) },
	); err != nil {
		log.Fatal(err)
	}

	if err := e.Subscribe("cleaned", func(t *eslev.Tuple) {
		fmt.Printf("CLEANED  %s\n", t)
	}); err != nil {
		log.Fatal(err)
	}

	push := func(at time.Duration, reader, tag string) {
		if err := e.Push("readings", eslev.TS(at), eslev.Str(reader), eslev.Str(tag), eslev.Null); err != nil {
			log.Fatal(err)
		}
	}
	push(0*time.Second, "dock", "pallet-1")
	push(0*time.Second+200*time.Millisecond, "dock", "pallet-1") // duplicate read
	push(1*time.Second, "dock", "pallet-2")
	push(4*time.Second, "gate", "pallet-1")  // shipped 4s after dock
	push(30*time.Second, "gate", "pallet-2") // too late: outside the window
}
