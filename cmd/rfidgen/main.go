// Command rfidgen generates RFID workload CSVs from the deterministic
// simulator, one file per stream, for use with `eslev run`.
//
// Usage:
//
//	rfidgen -scenario packing   -out dir [-n 100] [-seed 1] [-dup 0.0] [-miss 0.0]
//	rfidgen -scenario quality   -out dir [-n 100] [-seed 1] ...
//	rfidgen -scenario clinic    -out dir [-n 100] [-seed 1]
//	rfidgen -scenario door      -out dir [-n 100] [-seed 1]
//	rfidgen -scenario uniform   -out dir [-n 10000] [-tags 100] [-seed 1] ...
//
// -n is the scenario size (cases, items, tests, events, or readings).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	eslev "repro"
)

func main() {
	scenario := flag.String("scenario", "uniform", "packing | quality | clinic | door | uniform")
	out := flag.String("out", ".", "output directory")
	n := flag.Int("n", 100, "scenario size")
	tags := flag.Int("tags", 100, "tag cardinality (uniform)")
	seed := flag.Int64("seed", 1, "random seed")
	dup := flag.Float64("dup", 0, "duplicate probability")
	miss := flag.Float64("miss", 0, "miss probability")
	flag.Parse()

	var trace *eslev.Trace
	switch *scenario {
	case "packing":
		trace, _ = eslev.PackingLine(eslev.PackingConfig{Cases: *n, Seed: *seed})
	case "quality":
		trace, _ = eslev.QualityLine(eslev.QualityConfig{Items: *n, Seed: *seed})
	case "clinic":
		trace, _ = eslev.ClinicWorkflow(eslev.ClinicConfig{Tests: *n, Seed: *seed})
	case "door":
		trace, _ = eslev.DoorTraffic(eslev.DoorConfig{Events: *n, Seed: *seed})
	case "uniform":
		trace = eslev.UniformReadings("readings", *n, *tags, time.Second, *seed)
	default:
		fmt.Fprintf(os.Stderr, "rfidgen: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if *dup > 0 || *miss > 0 {
		trace = eslev.NoiseModel{
			DupProb: *dup, DupSpread: 500 * time.Millisecond, MissProb: *miss,
		}.Apply(trace, *seed+1)
	}

	files, rows, err := writeCSVs(trace, *out, *scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfidgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d readings across %d files under %s\n", rows, files, *out)
}

// writeCSVs writes one CSV per stream in the trace.
func writeCSVs(trace *eslev.Trace, dir, prefix string) (files, rows int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, 0, err
	}
	writers := map[string]*csv.Writer{}
	handles := map[string]*os.File{}
	defer func() {
		for name, w := range writers {
			w.Flush()
			if ferr := handles[name].Close(); err == nil && ferr != nil {
				err = ferr
			}
		}
	}()
	schemas := trace.Schemas()
	for _, r := range trace.Readings {
		w, ok := writers[r.Stream]
		if !ok {
			path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", prefix, r.Stream))
			f, ferr := os.Create(path)
			if ferr != nil {
				return files, rows, ferr
			}
			handles[r.Stream] = f
			w = csv.NewWriter(f)
			writers[r.Stream] = w
			files++
			schema := schemas[r.Stream]
			header := make([]string, schema.Len())
			for i, fld := range schema.Fields() {
				header[i] = fld.Name
			}
			if werr := w.Write(header); werr != nil {
				return files, rows, werr
			}
		}
		if werr := w.Write([]string{r.ReaderID, r.TagID, strconv.FormatInt(int64(r.At), 10)}); werr != nil {
			return files, rows, werr
		}
		rows++
	}
	return files, rows, nil
}
