package main

// Cluster subcommands: `eslev node` hosts one engine node, `eslev feed`
// runs a script over a node set, `eslev cluster-soak` certifies row-for-row
// equivalence between a multi-process cluster and the serial engine, and
// `eslev bench -cluster` measures the scale-out headline (see runBenchCluster).
// Soak and bench spawn their node tier as real child processes of this
// binary, so the TCP data plane is exercised across process boundaries, not
// just goroutines.

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	eslev "repro"
	"repro/internal/cluster"
)

// ---- eslev node -------------------------------------------------------------

// cmdNode hosts one engine node: listen, announce the bound address on
// stdout (the spawn harness reads it), serve one feed session, exit.
func cmdNode(args []string) error {
	fs := flag.NewFlagSet("node", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on (port 0 = ephemeral)")
	shards := fs.Int("shards", 1, "node-local worker shard count")
	credit := fs.Int("credit", 0, "byte credit granted to the feed (0 = default)")
	prof := profileFlags(fs)
	_ = fs.Parse(args)
	stop, err := prof.start()
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("LISTENING %s\n", l.Addr())
	serr := cluster.NewNode(cluster.NodeConfig{Shards: *shards, Credit: *credit}).ListenAndServe(l)
	if perr := stop(); serr == nil {
		serr = perr
	}
	return serr
}

// clusterEngine adapts a feed client to the engineLike surface runScript's
// CSV plumbing expects. Durability is a different layer; the methods exist
// only to satisfy the interface.
type clusterEngine struct{ c *cluster.Client }

func (a clusterEngine) Exec(script string) ([]*eslev.Query, error) { return a.c.Exec(script) }
func (a clusterEngine) Subscribe(name string, fn func(*eslev.Tuple)) error {
	return a.c.Subscribe(name, fn)
}
func (a clusterEngine) StreamSchema(name string) (*eslev.Schema, bool) {
	return a.c.StreamSchema(name)
}
func (a clusterEngine) Push(streamName string, ts eslev.Timestamp, vals ...eslev.Value) error {
	return a.c.Push(streamName, ts, vals...)
}
func (a clusterEngine) CheckpointNow() error {
	return errors.New("cluster feeds do not support checkpoints")
}
func (a clusterEngine) Recover(string) error {
	return errors.New("cluster feeds do not support recovery")
}

// ---- eslev feed -------------------------------------------------------------

// cmdFeed executes an .esl script over a running node set, feeding streams
// from CSVs exactly like `eslev run` and printing out_* derived tuples.
func cmdFeed(args []string) error {
	fs := flag.NewFlagSet("feed", flag.ExitOnError)
	nodeList := fs.String("nodes", "", "comma-separated node addresses (required)")
	batch := fs.Int("batch", 0, "pending-run length that triggers a flush (0 = default)")
	stats := fs.Bool("stats", false, "print placement and per-node transport accounting after the run")
	_ = fs.Parse(args)
	if *nodeList == "" || fs.NArg() < 1 {
		return errors.New("usage: eslev feed -nodes host:port,host:port script.esl [stream=file.csv ...]")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	client, err := cluster.Dial(cluster.Config{
		Nodes:     strings.Split(*nodeList, ","),
		BatchSize: *batch,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	e := clusterEngine{c: client}
	if _, err := e.Exec(string(src)); err != nil {
		return err
	}
	var feeds []csvFeed
	for _, f := range fs.Args()[1:] {
		parts := strings.SplitN(f, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("feed %q must be stream=file.csv", f)
		}
		feeds = append(feeds, csvFeed{stream: parts[0], file: parts[1]})
	}
	for _, name := range []string{"out", "out_alerts", "out_events", "out_rows"} {
		_ = e.Subscribe(name, func(t *eslev.Tuple) { fmt.Println(t) })
	}
	rows, err := loadCSVs(e, feeds, false)
	if err != nil {
		return err
	}
	if err := client.Drain(); err != nil {
		return err
	}
	if *stats {
		printClusterStats(client)
	}
	fmt.Fprintf(os.Stderr, "eslev: processed %d tuples from %d streams across %d nodes\n",
		rows, len(feeds), len(strings.Split(*nodeList, ",")))
	return nil
}

// printClusterStats renders the sealed placement and per-node accounting.
func printClusterStats(c *cluster.Client) {
	if rep, err := c.Placement(); err == nil {
		fmt.Fprintln(os.Stderr, "eslev: placement:")
		streams := make([]string, 0, len(rep.Streams))
		for s := range rep.Streams {
			streams = append(streams, s)
		}
		sort.Strings(streams)
		for _, s := range streams {
			fmt.Fprintf(os.Stderr, "  stream %-16s %s\n", s, rep.Streams[s])
		}
		queries := make([]string, 0, len(rep.Queries))
		for q := range rep.Queries {
			queries = append(queries, q)
		}
		sort.Strings(queries)
		for _, q := range queries {
			home := "all nodes"
			if h := rep.Queries[q]; h >= 0 {
				home = fmt.Sprintf("node %d", h)
			}
			fmt.Fprintf(os.Stderr, "  query  %-16s %s\n", q, home)
		}
		if rep.ExactClock {
			fmt.Fprintln(os.Stderr, "  exact clock: node 0 observes every foreign tuple as a heartbeat")
		}
	}
	fmt.Fprintln(os.Stderr, "eslev: per-node transport accounting:")
	for i, ns := range c.Stats().Nodes {
		fmt.Fprintf(os.Stderr, "  node %d %-21s sent tuples=%-8d beats=%-6d  rows back=%-8d  node saw tuples=%d beats=%d rows=%d\n",
			i, ns.Addr, ns.TuplesSent, ns.BeatsSent, ns.RowsReceived,
			ns.Node.Tuples, ns.Node.Beats, ns.Node.Rows)
	}
}

// ---- node-process spawn harness ---------------------------------------------

// nodeProc is one spawned `eslev node` child.
type nodeProc struct {
	cmd    *exec.Cmd
	addr   string
	killed bool
}

// nodeFleet is a set of spawned node children the fail-over harness can
// crash one by one; stop tolerates the corpses it made.
type nodeFleet struct {
	procs []*nodeProc
}

// spawnFleet launches n node child processes of this binary, each
// announcing its bound address before the next is started.
func spawnFleet(n, shards int) (*nodeFleet, error) {
	f := &nodeFleet{procs: make([]*nodeProc, 0, n)}
	for i := 0; i < n; i++ {
		nodeArgs := []string{"node", "-listen", "127.0.0.1:0", "-shards", strconv.Itoa(shards)}
		if dir := os.Getenv("ESLEV_NODE_PROFILE"); dir != "" {
			nodeArgs = append(nodeArgs, "-cpuprofile",
				fmt.Sprintf("%s/node-%d-%d.prof", dir, os.Getpid(), i))
		}
		cmd := exec.Command(os.Args[0], nodeArgs...)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			f.stop()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			f.stop()
			return nil, err
		}
		sc := bufio.NewScanner(out)
		if !sc.Scan() {
			cmd.Process.Kill()
			cmd.Wait()
			f.stop()
			return nil, fmt.Errorf("node %d: no LISTENING line", i)
		}
		line := strings.TrimSpace(sc.Text())
		addr, ok := strings.CutPrefix(line, "LISTENING ")
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			f.stop()
			return nil, fmt.Errorf("node %d: unexpected announcement %q", i, line)
		}
		go func() { // drain any further stdout so the child never blocks
			for sc.Scan() {
			}
		}()
		f.procs = append(f.procs, &nodeProc{cmd: cmd, addr: addr})
	}
	return f, nil
}

func (f *nodeFleet) addrs() []string {
	addrs := make([]string, len(f.procs))
	for i, p := range f.procs {
		addrs[i] = p.addr
	}
	return addrs
}

// kill crashes node i outright (SIGKILL — no shutdown handshake). The
// child's sockets close with the process; the feed discovers the death
// through its read/write deadlines and fails the node's origins over.
func (f *nodeFleet) kill(i int) error {
	p := f.procs[i]
	p.killed = true
	return p.cmd.Process.Kill()
}

// stop waits for clean exits (a node exits when its feed session ends) and
// kills stragglers. Nodes crashed via kill are reaped without complaint —
// their non-zero exit is the harness's own doing.
func (f *nodeFleet) stop() error {
	var firstErr error
	for _, p := range f.procs {
		done := make(chan error, 1)
		go func(c *exec.Cmd) { done <- c.Wait() }(p.cmd)
		select {
		case err := <-done:
			if err != nil && !p.killed && firstErr == nil {
				firstErr = fmt.Errorf("node %s: %w", p.addr, err)
			}
		case <-time.After(10 * time.Second):
			p.cmd.Process.Kill()
			<-done
			if firstErr == nil {
				firstErr = fmt.Errorf("node %s: did not exit after the session; killed", p.addr)
			}
		}
	}
	return firstErr
}

// spawnNodes launches n node child processes and returns their announced
// addresses, for callers that never crash anything.
func spawnNodes(n, shards int) ([]string, func() error, error) {
	f, err := spawnFleet(n, shards)
	if err != nil {
		return nil, nil, err
	}
	return f.addrs(), f.stop, nil
}

// ---- eslev cluster-soak -----------------------------------------------------

// soakSink collects output fingerprints; callbacks arrive serialized by the
// merge tier (cluster) or inline (serial), but lock anyway.
type soakSink struct {
	mu   sync.Mutex
	rows []string
}

func (s *soakSink) row(tag string) func(eslev.Row) {
	return func(r eslev.Row) {
		s.mu.Lock()
		s.rows = append(s.rows, fmt.Sprintf("%s|%v@%d%v", tag, r.Names, r.TS, r.Vals))
		s.mu.Unlock()
	}
}

func (s *soakSink) tup(tag string) func(*eslev.Tuple) {
	return func(t *eslev.Tuple) {
		s.mu.Lock()
		s.rows = append(s.rows, fmt.Sprintf("%s|%s@%d%v", tag, t.Schema.Name(), t.TS, t.Vals))
		s.mu.Unlock()
	}
}

func (s *soakSink) sorted() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.rows...)
	sort.Strings(out)
	return out
}

// soakEvent is one generated input event ("" stream = heartbeat).
type soakEvent struct {
	stream string
	reader string
	tag    string
	at     eslev.Timestamp
}

// soakWorkload generates the randomized soak feed: two SEQ input streams, a
// pool of readers and tags, occasional heartbeats.
func soakWorkload(events int, seed int64) []soakEvent {
	rng := rand.New(rand.NewSource(seed))
	out := make([]soakEvent, 0, events)
	at := eslev.TS(0)
	for i := 0; i < events; i++ {
		at += eslev.TS(time.Duration(rng.Intn(40)+1) * time.Millisecond)
		if rng.Intn(50) == 0 {
			out = append(out, soakEvent{at: at})
			continue
		}
		out = append(out, soakEvent{
			stream: []string{"C1", "C2"}[rng.Intn(2)],
			reader: fmt.Sprintf("R%d", rng.Intn(24)),
			tag:    fmt.Sprintf("t%d", rng.Intn(200)),
			at:     at,
		})
	}
	return out
}

// soakRegister installs the soak query mix on either runner flavor: 24
// reader-local SEQ queries (homable), one open keyed SEQ (registers on every
// node), and a C2 subscription.
func soakRegister(exec func(string) error, register func(name, sql string, onRow func(eslev.Row)) error,
	subscribe func(string, func(*eslev.Tuple)) error, sink *soakSink) error {
	if err := exec(`
		CREATE STREAM C1(readerid, tagid, tagtime);
		CREATE STREAM C2(readerid, tagid, tagtime);`); err != nil {
		return err
	}
	for i := 0; i < 24; i++ {
		rd := fmt.Sprintf("R%d", i)
		if err := register(fmt.Sprintf("local%d", i), fmt.Sprintf(`
			SELECT C1.tagid, C1.tagtime, C2.tagtime FROM C1, C2
			WHERE SEQ(C1, C2) AND C1.tagid=C2.tagid
			AND C1.readerid='%s' AND C2.readerid='%s'`, rd, rd), sink.row(rd)); err != nil {
			return err
		}
	}
	if err := register("open", `
		SELECT C1.tagid, C2.tagtime FROM C1, C2
		WHERE SEQ(C1, C2) AND C1.tagid=C2.tagid`, sink.row("open")); err != nil {
		return err
	}
	return subscribe("C2", sink.tup("c2"))
}

// runClusterSoak replays one seeded workload on the serial engine and on
// multi-process clusters of each requested size, comparing output multisets
// row for row and checking the transport accounting identity. Any
// divergence is a non-zero exit. An active kill plan crashes node children
// at its event milestones, so the comparison additionally certifies
// exactly-once re-emission across fail-over.
func runClusterSoak(nodeCounts string, events int, seed int64, shards, batch int, plan soakKillPlan) error {
	counts, err := parseIntList("-nodes", nodeCounts)
	if err != nil {
		return err
	}
	minNodes := counts[0]
	for _, n := range counts {
		if n < minNodes {
			minNodes = n
		}
	}
	if err := plan.validate(minNodes, events); err != nil {
		return err
	}
	feed := soakWorkload(events, seed)

	serial := &soakSink{}
	se := eslev.New()
	if err := soakRegister(
		func(s string) error { _, err := se.Exec(s); return err },
		func(name, sql string, onRow func(eslev.Row)) error {
			_, err := se.RegisterQuery(name, sql, onRow)
			return err
		},
		se.Subscribe, serial); err != nil {
		return err
	}
	for _, ev := range feed {
		if ev.stream == "" {
			err = se.Heartbeat(ev.at)
		} else {
			err = se.Push(ev.stream, ev.at, eslev.Str(ev.reader), eslev.Str(ev.tag), eslev.Time(ev.at))
		}
		if err != nil {
			return err
		}
	}
	if err := se.Drain(); err != nil {
		return err
	}
	want := serial.sorted()
	fmt.Printf("cluster-soak: events=%d seed=%d serial rows=%d\n", events, seed, len(want))

	for _, n := range counts {
		if err := soakOneCluster(n, shards, batch, feed, want, plan); err != nil {
			return fmt.Errorf("nodes=%d: %w", n, err)
		}
	}
	if plan.active() {
		fmt.Println("cluster-soak: PASS (row-for-row + accounting identity across kills)")
	} else {
		fmt.Println("cluster-soak: PASS (row-for-row + accounting identity)")
	}
	return nil
}

func soakOneCluster(n, shards, batch int, feed []soakEvent, want []string, plan soakKillPlan) error {
	fleet, err := spawnFleet(n, shards)
	if err != nil {
		return err
	}
	cfg := cluster.Config{Nodes: fleet.addrs(), BatchSize: batch}
	// failovers needs no lock: OnFailover fires on the feed goroutine, which
	// is this one — fail-over runs inside our own Push/Drain calls.
	failovers, restored := 0, 0
	if plan.ckpt > 0 {
		cfg.CheckpointEvery = plan.ckpt
		cfg.IOTimeout = 2 * time.Second
		cfg.OnFailover = func(ev cluster.FailoverEvent) {
			failovers++
			if ev.Restored {
				restored++
			}
			fmt.Printf("cluster-soak: nodes=%d fail-over origin %d: node %d -> node %d (ckpt lsn %d, %d batches replayed)\n",
				n, ev.Origin, ev.From, ev.To, ev.CheckpointLSN, ev.ReplayedBatches)
		}
	}
	client, err := cluster.Dial(cfg)
	if err != nil {
		fleet.stop()
		return err
	}
	sink := &soakSink{}
	if err := soakRegister(
		func(s string) error { _, err := client.Exec(s); return err },
		func(name, sql string, onRow func(eslev.Row)) error {
			_, err := client.RegisterQuery(name, sql, onRow)
			return err
		},
		client.Subscribe, sink); err != nil {
		client.Close()
		fleet.stop()
		return err
	}
	kills := 0
	for i, ev := range feed {
		// Halfway to each kill, force a drain barrier: the drain re-arms a
		// checkpoint at the drained LSN, so by kill time every origin has a
		// shipped snapshot and recovery goes through the restore path
		// instead of replaying from genesis.
		if plan.active() && kills < len(plan.victims) && i == plan.every*kills+plan.every/2 {
			if err := client.Drain(); err != nil {
				client.Close()
				fleet.stop()
				return fmt.Errorf("pre-kill drain: %w", err)
			}
		}
		if plan.active() && kills < len(plan.victims) && i == plan.every*(kills+1) {
			victim := plan.victims[kills]
			if err := fleet.kill(victim); err != nil {
				client.Close()
				fleet.stop()
				return fmt.Errorf("kill node %d: %w", victim, err)
			}
			kills++
		}
		if ev.stream == "" {
			err = client.Heartbeat(ev.at)
		} else {
			err = client.Push(ev.stream, ev.at, eslev.Str(ev.reader), eslev.Str(ev.tag), eslev.Time(ev.at))
		}
		if err != nil {
			client.Close()
			fleet.stop()
			return err
		}
	}
	if err := client.Drain(); err != nil {
		client.Close()
		fleet.stop()
		return err
	}
	var acct []string
	for i, ns := range client.Stats().Nodes {
		if ns.TuplesSent != ns.Node.Tuples || ns.BeatsSent != ns.Node.Beats || ns.RowsReceived != ns.Node.Rows {
			acct = append(acct, fmt.Sprintf(
				"node %d: sent tuples=%d beats=%d rows back=%d, node saw tuples=%d beats=%d rows=%d",
				i, ns.TuplesSent, ns.BeatsSent, ns.RowsReceived,
				ns.Node.Tuples, ns.Node.Beats, ns.Node.Rows))
		}
	}
	if err := client.Close(); err != nil {
		fleet.stop()
		return err
	}
	if err := fleet.stop(); err != nil {
		return err
	}
	got := sink.sorted()
	if len(got) != len(want) {
		return fmt.Errorf("row count diverged: cluster %d vs serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("row %d diverged:\n  cluster: %s\n  serial:  %s", i, got[i], want[i])
		}
	}
	if len(acct) > 0 {
		return fmt.Errorf("accounting identity violated:\n  %s", strings.Join(acct, "\n  "))
	}
	if kills > 0 && failovers < kills {
		return fmt.Errorf("killed %d nodes but observed only %d fail-overs", kills, failovers)
	}
	if kills > 0 && restored == 0 {
		return fmt.Errorf("%d fail-overs but none restored a checkpoint — every recovery replayed from genesis", failovers)
	}
	if kills > 0 {
		fmt.Printf("cluster-soak: nodes=%d rows=%d identical, accounting exact, %d kills -> %d fail-overs (%d restored)\n",
			n, len(got), kills, failovers, restored)
	} else {
		fmt.Printf("cluster-soak: nodes=%d rows=%d identical, accounting exact\n", n, len(got))
	}
	return nil
}

func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad %s entry %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ---- eslev bench -cluster ---------------------------------------------------

// The cluster bench measures the scale-out headline on the keyed fan-out
// workload: Q reader-local SEQ queries (C1.readerid='Rq' AND
// C2.readerid='Rq' AND C1.tagid=C2.tagid). Single-process, per-event cost
// grows with the total registered query count; in the cluster every query
// homes to one node, so each node carries ~Q/N queries and the aggregate
// cost drops even though every byte crosses a real TCP connection. The
// 1-node cluster isolates the wire tax: same query load as single-process,
// plus the full encode/ship/decode/merge path.
type clusterBenchResult struct {
	Arm          string  `json:"arm"`
	Nodes        int     `json:"nodes"`
	Queries      int     `json:"queries"`
	Events       int     `json:"events"`
	Matches      int64   `json:"matches"`
	WallMs       float64 `json:"wall_ms"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type clusterBenchReport struct {
	CPUs               int                  `json:"cpus"`
	GoMaxProcs         int                  `json:"gomaxprocs"`
	Queries            int                  `json:"queries"`
	Events             int                  `json:"events"`
	Reps               int                  `json:"reps_per_arm"`
	Results            []clusterBenchResult `json:"results"`
	BestSingle         string               `json:"best_single_arm"`
	BestSingleNsPerEv  float64              `json:"best_single_ns_per_event"`
	SpeedupAtMaxNodes  float64              `json:"speedup_at_max_nodes"`
	WireOverheadPct    float64              `json:"wire_overhead_pct_at_1_node"`
	MinSpeedupGate     float64              `json:"min_speedup_gate"`
	MaxWireOverheadPct float64              `json:"max_wire_overhead_gate_pct"`
}

// clusterBenchFeed pre-builds the keyed fan-out event list: C1/C2 pairs per
// query reader, tags cycling, strictly increasing timestamps.
type clusterFeedEvent struct {
	stream string
	reader string
	tag    string
	at     eslev.Timestamp
}

func clusterBenchFeed(queries, events int) []clusterFeedEvent {
	const tags = 16
	out := make([]clusterFeedEvent, 0, events)
	for i := 0; i < events; i++ {
		pair := i / 2
		name := "C1"
		if i%2 == 1 {
			name = "C2"
		}
		out = append(out, clusterFeedEvent{
			stream: name,
			reader: fmt.Sprintf("R%d", pair%queries),
			tag:    fmt.Sprintf("t%d", pair%tags),
			at:     eslev.TS(time.Duration(i+1) * 10 * time.Millisecond),
		})
	}
	return out
}

const clusterBenchSQL = `
	SELECT C2.tagid, C2.tagtime FROM C1, C2
	WHERE SEQ(C1, C2) OVER [1 SECONDS PRECEDING C2]
	AND C1.readerid='%[1]s' AND C2.readerid='%[1]s'
	AND C1.tagid=C2.tagid`

// benchClusterSingle times the workload on one in-process engine (serial
// for shards=1, sharded otherwise).
func benchClusterSingle(shards, queries int, feed []clusterFeedEvent) (clusterBenchResult, error) {
	arm := "serial"
	if shards > 1 {
		arm = fmt.Sprintf("shards-%d", shards)
	}
	var matches int64
	onRow := func(eslev.Row) { matches++ }
	var e engineLike
	finish := func() error { return nil }
	if shards > 1 {
		se := eslev.NewSharded(shards)
		finish, e = se.Close, se
	} else {
		en := eslev.New()
		finish, e = en.Drain, en
	}
	if _, err := e.Exec(`
		CREATE STREAM C1(readerid, tagid, tagtime);
		CREATE STREAM C2(readerid, tagid, tagtime);`); err != nil {
		return clusterBenchResult{}, err
	}
	reg := e.(interface {
		RegisterQuery(name, sql string, onRow func(eslev.Row)) (*eslev.Query, error)
	})
	for qi := 0; qi < queries; qi++ {
		rd := fmt.Sprintf("R%d", qi)
		if _, err := reg.RegisterQuery(fmt.Sprintf("q%04d", qi),
			fmt.Sprintf(clusterBenchSQL, rd), onRow); err != nil {
			return clusterBenchResult{}, err
		}
	}
	// Pre-build the item runs and feed through PushBatch, mirroring how the
	// cluster feed batches over the wire — the single-process arms get the
	// same amortization the cluster gets, keeping the comparison honest.
	schemas := map[string]*eslev.Schema{}
	for _, s := range []string{"C1", "C2"} {
		schemas[s], _ = e.StreamSchema(s)
	}
	items := make([]eslev.Item, 0, len(feed))
	for _, ev := range feed {
		tu, err := eslev.NewTuple(schemas[ev.stream], ev.at,
			eslev.Str(ev.reader), eslev.Str(ev.tag), eslev.Null)
		if err != nil {
			return clusterBenchResult{}, err
		}
		items = append(items, eslev.Of(tu))
	}
	push := e.(interface{ PushBatch([]eslev.Item) error })
	start := time.Now()
	for off := 0; off < len(items); off += cluster.DefaultBatchSize {
		hi := off + cluster.DefaultBatchSize
		if hi > len(items) {
			hi = len(items)
		}
		if err := push.PushBatch(items[off:hi]); err != nil {
			return clusterBenchResult{}, err
		}
	}
	if err := finish(); err != nil {
		return clusterBenchResult{}, err
	}
	wall := time.Since(start)
	return clusterBenchResult{
		Arm: arm, Nodes: 0, Queries: queries, Events: len(feed), Matches: matches,
		WallMs:       float64(wall) / float64(time.Millisecond),
		NsPerEvent:   float64(wall) / float64(len(feed)),
		EventsPerSec: float64(len(feed)) / wall.Seconds(),
	}, nil
}

// benchClusterArm times the workload across n spawned node processes.
func benchClusterArm(n, shards, queries, batch int, feed []clusterFeedEvent) (clusterBenchResult, error) {
	addrs, stopNodes, err := spawnNodes(n, shards)
	if err != nil {
		return clusterBenchResult{}, err
	}
	fail := func(err error) (clusterBenchResult, error) {
		stopNodes()
		return clusterBenchResult{}, err
	}
	client, err := cluster.Dial(cluster.Config{Nodes: addrs, BatchSize: batch})
	if err != nil {
		return fail(err)
	}
	if _, err := client.Exec(`
		CREATE STREAM C1(readerid, tagid, tagtime);
		CREATE STREAM C2(readerid, tagid, tagtime);`); err != nil {
		client.Close()
		return fail(err)
	}
	var matches int64
	onRow := func(eslev.Row) { atomic.AddInt64(&matches, 1) }
	for qi := 0; qi < queries; qi++ {
		rd := fmt.Sprintf("R%d", qi)
		if _, err := client.RegisterQuery(fmt.Sprintf("q%04d", qi),
			fmt.Sprintf(clusterBenchSQL, rd), onRow); err != nil {
			client.Close()
			return fail(err)
		}
	}
	if err := client.Seal(); err != nil { // registration RTTs happen off the clock
		client.Close()
		return fail(err)
	}
	// Pre-build the item runs off the clock, exactly as the single-process
	// arms do: the timed region measures routing + wire + remote execution,
	// not input materialization, on both sides of the comparison.
	schemas := map[string]*eslev.Schema{}
	for _, s := range []string{"C1", "C2"} {
		schemas[s], _ = client.StreamSchema(s)
	}
	items := make([]eslev.Item, 0, len(feed))
	for _, ev := range feed {
		tu, err := eslev.NewTuple(schemas[ev.stream], ev.at,
			eslev.Str(ev.reader), eslev.Str(ev.tag), eslev.Null)
		if err != nil {
			client.Close()
			return fail(err)
		}
		items = append(items, eslev.Of(tu))
	}
	start := time.Now()
	for off := 0; off < len(items); off += cluster.DefaultBatchSize {
		hi := off + cluster.DefaultBatchSize
		if hi > len(items) {
			hi = len(items)
		}
		if err := client.PushBatch(items[off:hi]); err != nil {
			client.Close()
			return fail(err)
		}
	}
	if err := client.Drain(); err != nil {
		client.Close()
		return fail(err)
	}
	wall := time.Since(start)
	if err := client.Close(); err != nil {
		return fail(err)
	}
	if err := stopNodes(); err != nil {
		return clusterBenchResult{}, err
	}
	return clusterBenchResult{
		Arm: fmt.Sprintf("cluster-%d", n), Nodes: n, Queries: queries, Events: len(feed),
		Matches:      atomic.LoadInt64(&matches),
		WallMs:       float64(wall) / float64(time.Millisecond),
		NsPerEvent:   float64(wall) / float64(len(feed)),
		EventsPerSec: float64(len(feed)) / wall.Seconds(),
	}, nil
}

// runBenchCluster sweeps single-process configurations and loopback cluster
// sizes over the keyed fan-out workload, writes BENCH_CLUSTER-style JSON,
// and gates the two scale-out promises: aggregate speedup at the largest
// node count vs the best single-process arm, and wire overhead at 1 node.
func runBenchCluster(queries, events, batch, reps int, nodeList string, jsonPath string,
	minSpeedup, maxWireOverhead float64) error {
	nodeCounts, err := parseIntList("-cluster-nodes", nodeList)
	if err != nil {
		return err
	}
	if reps < 1 {
		reps = 1
	}
	feed := clusterBenchFeed(queries, events)
	report := clusterBenchReport{
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Queries: queries, Events: events, Reps: reps,
		MinSpeedupGate: minSpeedup, MaxWireOverheadPct: maxWireOverhead,
	}
	fmt.Printf("cpus=%d gomaxprocs=%d queries=%d events=%d\n",
		report.CPUs, report.GoMaxProcs, queries, events)

	// Fixed warm-up: one untimed reduced pass per arm shape before anything
	// is measured (JIT-free runtime, but page cache, connection setup, and
	// allocator arenas all settle here).
	warmFeed := clusterBenchFeed(queries, benchWarmupEvents(events))
	if _, err := benchClusterSingle(1, queries, warmFeed); err != nil {
		return err
	}
	if _, err := benchClusterArm(1, 1, queries, batch, warmFeed); err != nil {
		return err
	}

	var expect int64 = -1
	record := func(res clusterBenchResult) error {
		report.Results = append(report.Results, res)
		fmt.Printf("%-10s  %9.1f ms  %8.0f ns/event  %10.0f events/s  matches=%d\n",
			res.Arm, res.WallMs, res.NsPerEvent, res.EventsPerSec, res.Matches)
		if expect == -1 {
			expect = res.Matches
		} else if res.Matches != expect {
			return fmt.Errorf("%s found %d matches, expected %d: cluster output diverged",
				res.Arm, res.Matches, expect)
		}
		return nil
	}

	// Each arm runs reps times and reports its best pass: on a small shared
	// machine, GC phase and scheduler luck swing any single pass by 2x, and
	// the minimum is the standard estimator of an arm's intrinsic cost.
	bestOf := func(run func() (clusterBenchResult, error)) (clusterBenchResult, error) {
		var best clusterBenchResult
		for r := 0; r < reps; r++ {
			res, err := run()
			if err != nil {
				return clusterBenchResult{}, err
			}
			if best.Arm == "" || res.NsPerEvent < best.NsPerEvent {
				best = res
			}
		}
		return best, nil
	}

	best := clusterBenchResult{}
	for _, shards := range []int{1, 2} {
		shards := shards
		res, err := bestOf(func() (clusterBenchResult, error) {
			return benchClusterSingle(shards, queries, feed)
		})
		if err != nil {
			return err
		}
		if err := record(res); err != nil {
			return err
		}
		if best.Arm == "" || res.NsPerEvent < best.NsPerEvent {
			best = res
		}
	}
	report.BestSingle, report.BestSingleNsPerEv = best.Arm, best.NsPerEvent

	var at1, atMax clusterBenchResult
	for _, n := range nodeCounts {
		n := n
		res, err := bestOf(func() (clusterBenchResult, error) {
			return benchClusterArm(n, 1, queries, batch, feed)
		})
		if err != nil {
			return err
		}
		if err := record(res); err != nil {
			return err
		}
		if n == 1 {
			at1 = res
		}
		atMax = res
	}

	if at1.Arm != "" {
		report.WireOverheadPct = (at1.NsPerEvent - best.NsPerEvent) / best.NsPerEvent * 100
		fmt.Printf("wire overhead at 1 node vs %s: %+.1f%%\n", best.Arm, report.WireOverheadPct)
	}
	if atMax.Arm != "" && atMax.Nodes > 1 {
		report.SpeedupAtMaxNodes = best.NsPerEvent / atMax.NsPerEvent
		fmt.Printf("aggregate speedup at %d nodes vs %s: %.2fx\n",
			atMax.Nodes, best.Arm, report.SpeedupAtMaxNodes)
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eslev: wrote %s\n", jsonPath)
	}
	var gates []string
	if minSpeedup > 0 && atMax.Nodes > 1 && report.SpeedupAtMaxNodes < minSpeedup {
		gates = append(gates, fmt.Sprintf("speedup at %d nodes is %.2fx, need >= %.2fx",
			atMax.Nodes, report.SpeedupAtMaxNodes, minSpeedup))
	}
	if maxWireOverhead > 0 && at1.Arm != "" && report.WireOverheadPct > maxWireOverhead {
		gates = append(gates, fmt.Sprintf("wire overhead at 1 node is %.1f%%, limit %.1f%%",
			report.WireOverheadPct, maxWireOverhead))
	}
	if len(gates) > 0 {
		return fmt.Errorf("cluster bench gate failed:\n  %s", strings.Join(gates, "\n  "))
	}
	return nil
}

// benchWarmupEvents is the fixed untimed warm-up size: enough to touch every
// code path and settle the allocator, small enough to stay cheap.
func benchWarmupEvents(events int) int {
	w := events / 5
	if w > 10_000 {
		w = 10_000
	}
	if w < 100 {
		w = 100
	}
	return w
}
