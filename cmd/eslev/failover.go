package main

// Kill-a-node fail-over harness: `eslev cluster-soak -kill-every` crashes
// real node child processes mid-feed and certifies that the surviving
// cluster still matches the serial engine row for row (exactly-once
// re-emission across the kill), and `eslev bench -failover` measures what
// the availability layer costs — steady-state checkpoint overhead against
// a checkpoint-free cluster, and the recovery time from a kill to the
// first post-fail-over output row.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	eslev "repro"
	"repro/internal/cluster"
)

// ---- crash scheduling for cluster-soak --------------------------------------

// soakKillPlan schedules crash injection for the cluster soak: victim k is
// killed after (k+1)*every feed events, with per-origin checkpoints every
// ckpt accepted batches so the feed can re-home the victim's origins.
// every==0 with ckpt>0 runs checkpoints without kills (overhead soak).
type soakKillPlan struct {
	every   int
	victims []int
	ckpt    int
}

func (p soakKillPlan) active() bool { return p.every > 0 && len(p.victims) > 0 }

// parseSoakKillPlan builds the plan from the cluster-soak flags. The ckpt
// cadence defaults to 8 batches when kills are requested: fail-over needs
// checkpoints, and 8 keeps the replay window a few thousand events.
func parseSoakKillPlan(killEvery int, killNodes string, ckptEvery int) (soakKillPlan, error) {
	plan := soakKillPlan{ckpt: ckptEvery}
	if killEvery <= 0 {
		return plan, nil
	}
	victims, err := parseKillList("-kill-nodes", killNodes)
	if err != nil {
		return plan, err
	}
	plan.every, plan.victims = killEvery, victims
	if plan.ckpt == 0 {
		plan.ckpt = 8
	}
	return plan, nil
}

// validate rejects schedules that cannot certify anything: a victim outside
// the smallest cluster, a repeated victim, a matrix that kills every node
// (no survivor to adopt the origins), or a kill past the end of the feed.
func (p soakKillPlan) validate(minNodes, events int) error {
	if !p.active() {
		return nil
	}
	seen := make(map[int]bool)
	for _, v := range p.victims {
		if v >= minNodes {
			return fmt.Errorf("kill victim %d out of range for a %d-node cluster", v, minNodes)
		}
		if seen[v] {
			return fmt.Errorf("kill victim %d listed twice", v)
		}
		seen[v] = true
	}
	if len(p.victims) >= minNodes {
		return fmt.Errorf("killing %d of %d nodes leaves no survivor", len(p.victims), minNodes)
	}
	if last := p.every * len(p.victims); last >= events {
		return fmt.Errorf("last kill at event %d is past the %d-event feed", last, events)
	}
	return nil
}

// parseKillList parses -kill-nodes: like parseIntList, but node 0 is a
// legal (and important) victim — it anchors the exact-clock placement.
func parseKillList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad %s entry %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ---- eslev bench -failover --------------------------------------------------

// failoverBenchReport is the machine-readable result of `bench -failover`:
// the steady-state cost of cutting checkpoints on the cluster data plane,
// and how fast a kill-a-node fail-over produces its first output row.
type failoverBenchReport struct {
	CPUs                   int     `json:"cpus"`
	GoMaxProcs             int     `json:"gomaxprocs"`
	Nodes                  int     `json:"nodes"`
	Queries                int     `json:"queries"`
	Events                 int     `json:"events"`
	CheckpointEvery        int     `json:"checkpoint_every_batches"`
	Reps                   int     `json:"reps_per_arm"`
	BaselineNsPerEvent     float64 `json:"baseline_ns_per_event"`
	CheckpointedNsPerEvent float64 `json:"checkpointed_ns_per_event"`
	OverheadPct            float64 `json:"checkpoint_overhead_pct"`
	Matches                int64   `json:"matches"`
	KillEvent              int     `json:"kill_event"`
	KillNode               int     `json:"kill_node"`
	RecoveryMs             float64 `json:"recovery_ms"`
	ReplayedBatches        int     `json:"replayed_batches"`
	CheckpointLSN          uint64  `json:"checkpoint_lsn_at_failover"`
	Failovers              int     `json:"failovers"`
	MaxOverheadGate        float64 `json:"max_overhead_gate_pct"`
}

// failoverProbe carries what the kill arm observed beyond throughput.
type failoverProbe struct {
	failovers int
	replayed  int
	ckptLSN   uint64
	recovery  time.Duration
}

// benchFailoverArm times the keyed fan-out workload across n spawned nodes
// with the given checkpoint cadence (0 = availability layer off). With
// killAt > 0, killNode is crashed once the push loop reaches that event
// offset, and the probe reports the time from the kill to the first output
// row that arrives after fail-over completed.
func benchFailoverArm(n, queries, batch, ckptEvery int, feed []clusterFeedEvent,
	killAt, killNode int) (clusterBenchResult, failoverProbe, error) {
	var probe failoverProbe
	fleet, err := spawnFleet(n, 1)
	if err != nil {
		return clusterBenchResult{}, probe, err
	}
	fail := func(err error) (clusterBenchResult, failoverProbe, error) {
		fleet.stop()
		return clusterBenchResult{}, probe, err
	}
	// failedOverAt/firstRowAfter cross goroutines: OnFailover fires on the
	// feed goroutine, onRow on the fan-in merge goroutine.
	var mu sync.Mutex
	var failedOverAt, firstRowAfter time.Time
	cfg := cluster.Config{
		Nodes:           fleet.addrs(),
		BatchSize:       batch,
		CheckpointEvery: ckptEvery,
		IOTimeout:       2 * time.Second,
		OnFailover: func(ev cluster.FailoverEvent) {
			mu.Lock()
			probe.failovers++
			probe.replayed += ev.ReplayedBatches
			probe.ckptLSN = ev.CheckpointLSN
			failedOverAt = time.Now()
			mu.Unlock()
		},
	}
	client, err := cluster.Dial(cfg)
	if err != nil {
		return fail(err)
	}
	if _, err := client.Exec(`
		CREATE STREAM C1(readerid, tagid, tagtime);
		CREATE STREAM C2(readerid, tagid, tagtime);`); err != nil {
		client.Close()
		return fail(err)
	}
	var matches int64
	onRow := func(eslev.Row) {
		atomic.AddInt64(&matches, 1)
		if killAt > 0 {
			mu.Lock()
			if !failedOverAt.IsZero() && firstRowAfter.IsZero() {
				firstRowAfter = time.Now()
			}
			mu.Unlock()
		}
	}
	for qi := 0; qi < queries; qi++ {
		rd := fmt.Sprintf("R%d", qi)
		if _, err := client.RegisterQuery(fmt.Sprintf("q%04d", qi),
			fmt.Sprintf(clusterBenchSQL, rd), onRow); err != nil {
			client.Close()
			return fail(err)
		}
	}
	if err := client.Seal(); err != nil { // registration RTTs happen off the clock
		client.Close()
		return fail(err)
	}
	schemas := map[string]*eslev.Schema{}
	for _, s := range []string{"C1", "C2"} {
		schemas[s], _ = client.StreamSchema(s)
	}
	items := make([]eslev.Item, 0, len(feed))
	for _, ev := range feed {
		tu, err := eslev.NewTuple(schemas[ev.stream], ev.at,
			eslev.Str(ev.reader), eslev.Str(ev.tag), eslev.Null)
		if err != nil {
			client.Close()
			return fail(err)
		}
		items = append(items, eslev.Of(tu))
	}
	var killTime time.Time
	start := time.Now()
	for off := 0; off < len(items); off += cluster.DefaultBatchSize {
		if killAt > 0 && killTime.IsZero() && off >= killAt {
			// Drain first: the barrier re-arms a checkpoint at the drained
			// LSN, so the kill exercises snapshot restore plus a short
			// replay tail rather than a replay from genesis. The drain runs
			// before killTime is taken, so it never inflates recovery time.
			if err := client.Drain(); err != nil {
				client.Close()
				return fail(err)
			}
			if err := fleet.kill(killNode); err != nil {
				client.Close()
				return fail(err)
			}
			killTime = time.Now()
		}
		hi := off + cluster.DefaultBatchSize
		if hi > len(items) {
			hi = len(items)
		}
		if err := client.PushBatch(items[off:hi]); err != nil {
			client.Close()
			return fail(err)
		}
	}
	if err := client.Drain(); err != nil {
		client.Close()
		return fail(err)
	}
	wall := time.Since(start)
	if err := client.Close(); err != nil {
		return fail(err)
	}
	if err := fleet.stop(); err != nil {
		return clusterBenchResult{}, probe, err
	}
	arm := "ckpt-off"
	if ckptEvery > 0 {
		arm = fmt.Sprintf("ckpt-%d", ckptEvery)
	}
	if killAt > 0 {
		arm = "kill"
		mu.Lock()
		ref := firstRowAfter
		mu.Unlock()
		if probe.failovers == 0 {
			return clusterBenchResult{}, probe, errors.New("kill produced no fail-over event")
		}
		if ref.IsZero() {
			return clusterBenchResult{}, probe, errors.New("no output row arrived after fail-over")
		}
		probe.recovery = ref.Sub(killTime)
	}
	return clusterBenchResult{
		Arm: arm, Nodes: n, Queries: queries, Events: len(feed),
		Matches:      atomic.LoadInt64(&matches),
		WallMs:       float64(wall) / float64(time.Millisecond),
		NsPerEvent:   float64(wall) / float64(len(feed)),
		EventsPerSec: float64(len(feed)) / wall.Seconds(),
	}, probe, nil
}

// runBenchFailover measures the availability layer and writes
// BENCH_FAILOVER-style JSON. Three arms over one pre-built feed: a
// checkpoint-free cluster (baseline), the same cluster cutting checkpoints
// every ckptEvery batches (the overhead under the gate), and a kill arm
// that crashes node killNode=0 at the feed's midpoint and measures
// recovery time. All three arms must report identical match counts — the
// kill arm doing so is the exactly-once guarantee exercised end to end.
func runBenchFailover(nodes, queries, events, batch, ckptEvery, reps int,
	jsonPath string, maxOverhead float64) error {
	if nodes < 2 {
		return errors.New("bench -failover needs at least 2 nodes (a kill must leave a survivor)")
	}
	if ckptEvery < 1 {
		return errors.New("bench -failover needs -failover-ckpt >= 1")
	}
	if reps < 1 {
		reps = 1
	}
	feed := clusterBenchFeed(queries, events)
	report := failoverBenchReport{
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Nodes: nodes, Queries: queries, Events: events,
		CheckpointEvery: ckptEvery, Reps: reps, MaxOverheadGate: maxOverhead,
	}
	fmt.Printf("cpus=%d gomaxprocs=%d nodes=%d queries=%d events=%d checkpoint-every=%d batches\n",
		report.CPUs, report.GoMaxProcs, nodes, queries, events, ckptEvery)

	prArm := func(res clusterBenchResult) {
		fmt.Printf("%-10s  %9.1f ms  %8.0f ns/event  %10.0f events/s  matches=%d\n",
			res.Arm, res.WallMs, res.NsPerEvent, res.EventsPerSec, res.Matches)
	}

	// Fixed untimed warm-up before any measured arm.
	warm := clusterBenchFeed(queries, benchWarmupEvents(events))
	if _, _, err := benchFailoverArm(nodes, queries, batch, 0, warm, 0, 0); err != nil {
		return err
	}

	// Best-of-reps for the two timing arms: the overhead gate compares their
	// minima, the standard estimator of intrinsic cost on a noisy box.
	bestOf := func(ck int) (clusterBenchResult, error) {
		var best clusterBenchResult
		for r := 0; r < reps; r++ {
			res, _, err := benchFailoverArm(nodes, queries, batch, ck, feed, 0, 0)
			if err != nil {
				return clusterBenchResult{}, err
			}
			if best.Arm == "" || res.NsPerEvent < best.NsPerEvent {
				best = res
			}
		}
		return best, nil
	}
	base, err := bestOf(0)
	if err != nil {
		return err
	}
	prArm(base)
	ckpt, err := bestOf(ckptEvery)
	if err != nil {
		return err
	}
	prArm(ckpt)
	if base.Matches != ckpt.Matches {
		return fmt.Errorf("checkpointed arm found %d matches, baseline %d: output diverged",
			ckpt.Matches, base.Matches)
	}

	killAt := len(feed) / 2
	const killNode = 0 // the exact-clock anchor: the hardest node to lose
	killRes, probe, err := benchFailoverArm(nodes, queries, batch, ckptEvery, feed, killAt, killNode)
	if err != nil {
		return err
	}
	prArm(killRes)
	if killRes.Matches != base.Matches {
		return fmt.Errorf("exactly-once violated: kill arm found %d matches, baseline %d",
			killRes.Matches, base.Matches)
	}
	if probe.ckptLSN == 0 {
		return fmt.Errorf("kill-arm recovery replayed from genesis: no checkpoint was cut before the kill")
	}

	report.BaselineNsPerEvent = base.NsPerEvent
	report.CheckpointedNsPerEvent = ckpt.NsPerEvent
	report.OverheadPct = (ckpt.NsPerEvent - base.NsPerEvent) / base.NsPerEvent * 100
	report.Matches = base.Matches
	report.KillEvent = killAt
	report.KillNode = killNode
	report.RecoveryMs = float64(probe.recovery) / float64(time.Millisecond)
	report.ReplayedBatches = probe.replayed
	report.CheckpointLSN = probe.ckptLSN
	report.Failovers = probe.failovers

	fmt.Printf("checkpoint overhead: %+.1f%% (every %d batches)\n", report.OverheadPct, ckptEvery)
	fmt.Printf("kill node %d at event %d: %d fail-over(s), checkpoint lsn %d, %d batches replayed\n",
		killNode, killAt, report.Failovers, report.CheckpointLSN, report.ReplayedBatches)
	fmt.Printf("recovery: %.1f ms from kill to first post-fail-over row\n", report.RecoveryMs)

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eslev: wrote %s\n", jsonPath)
	}
	if maxOverhead > 0 && report.OverheadPct > maxOverhead {
		return fmt.Errorf("checkpoint overhead %.1f%% exceeds budget %.0f%%",
			report.OverheadPct, maxOverhead)
	}
	return nil
}
