// Command eslev runs ESL-EV scripts over CSV-recorded RFID streams and
// ships demos of the paper's examples, including the §3.1.1 pairing-mode
// walkthrough with the exact joint tuple history from the text.
//
// Usage:
//
//	eslev demo modes                 reproduce the §3.1.1 walkthrough
//	eslev demo examples              run paper examples 1-8 on simulated data
//	eslev run [-shards N] [-stats] [-slack d] [-no-route-index] [-checkpoint-dir d]
//	          [-checkpoint-every N] [-restore] [-cpuprofile f] [-memprofile f]
//	          [-trace f] script.esl [s=f.csv]
//	                                 execute a script, feeding stream s
//	                                 from CSV file f (repeatable); -shards
//	                                 runs it on the partition-parallel engine;
//	                                 -slack enables the reorder boundary and
//	                                 feeds rows in recorded arrival order, so
//	                                 out-of-order feeds work and CONSISTENCY
//	                                 FAST/MIDDLE clauses speculate;
//	                                 -stats prints per-query routed/skipped
//	                                 counters, run gauges, and speculation
//	                                 pending/retracted counts afterwards;
//	                                 -checkpoint-dir journals every pushed
//	                                 item and cuts a durable snapshot when
//	                                 the run ends (plus every N records with
//	                                 -checkpoint-every); -restore recovers
//	                                 state from that directory first
//	eslev bench [-shards 1,2,4] [-batch 1,256] [-events N] [-bench-json out.json]
//	            [-baseline old.json -max-regress 15] [-cpuprofile f] [-memprofile f] [-trace f]
//	                                 run the sharded-scaling workloads and
//	                                 report throughput (optionally as JSON);
//	                                 with -baseline, fail on ns/event regression
//	eslev bench -multiquery [-queries 1,4,16,64,256] [-events N] [-bench-json out.json]
//	                                 sweep registered-query fan-out with the
//	                                 routing index on and off
//	eslev bench -recovery [-events N] [-checkpoint-every N] [-max-overhead pct]
//	            [-bench-json out.json]
//	                                 measure journaling overhead vs an undurable
//	                                 baseline, snapshot size, checkpoint latency,
//	                                 and restore latency; -max-overhead turns the
//	                                 measurement into a regression gate
//	eslev bench -failover [-failover-nodes 2] [-failover-ckpt N] [-events N]
//	            [-max-overhead pct] [-bench-json out.json]
//	                                 measure the cluster availability layer:
//	                                 checkpoint overhead vs a checkpoint-free
//	                                 cluster, then kill a node mid-feed and
//	                                 report recovery time to the first
//	                                 post-fail-over row; all arms must agree
//	                                 on the output row count (exactly-once)
//	eslev bench -speculation [-events N] [-spec-reps N] [-spec-max-p99-ratio r]
//	            [-spec-max-overhead pct] [-bench-json out.json]
//	                                 measure consistency-level first-answer
//	                                 latency (STRICT/MIDDLE/FAST arms over the
//	                                 same disordered feed) and the wall-time
//	                                 overhead of the retraction path vs a
//	                                 clean-feed FAST run; both gates fail the
//	                                 run when exceeded
//	eslev chaos [-events N] [-shards N] [-fanout N] [-slack d] [-disorder f] [-dup f]
//	            [-corrupt f] [-oversize f] [-late f] [-panic-every N] [-policy P]
//	            [-extended] [-kill-every N] [-checkpoint-every N] [-journal-dir d]
//	            [-consistency L] [-late-heavy]
//	                                 fault-injection soak: perturb a deterministic
//	                                 workload with disorder, duplicates, corruption
//	                                 and UDF panics, then verify output equivalence
//	                                 and exact dead-letter accounting; -fanout adds
//	                                 N selective queries and pits routed dispatch
//	                                 against a scan-all baseline; -kill-every
//	                                 crashes the perturbed engine every N offered
//	                                 readings and recovers it from the latest
//	                                 snapshot plus journal replay, certifying
//	                                 exactly-once output across crashes;
//	                                 -consistency MIDDLE|FAST runs the workload
//	                                 speculatively and proves the compensated
//	                                 (retraction-folded) stream equals the strict
//	                                 baseline row for row; -late-heavy swaps in
//	                                 bursty reader-clustered near-horizon lateness
//
// CSV files carry a header row naming the stream's columns; a column named
// read_time/tagtime/ts holds the event time as a Go duration ("1.5s") or
// integer nanoseconds. Rows must be in non-decreasing time order unless
// -slack covers the recorded disorder.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strconv"
	"strings"
	"time"

	eslev "repro"
	"repro/internal/chaos"
	"repro/internal/snapshot"
	"repro/internal/spec"
	"repro/internal/stream"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "demo":
		if len(os.Args) < 3 {
			usage()
		}
		switch os.Args[2] {
		case "modes":
			err = demoModes()
		case "examples":
			err = demoExamples()
		default:
			usage()
		}
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		shards := fs.Int("shards", 1, "run on the partition-parallel engine with this many shards")
		stats := fs.Bool("stats", false, "print per-query stats (emitted, routed/skipped, runs, speculation gauges) after the run")
		slack := fs.Duration("slack", 0, "reorder slack for the ingest boundary; enables out-of-order feeds and CONSISTENCY FAST/MIDDLE queries")
		noRoute := fs.Bool("no-route-index", false, "disable the multi-query routing index (scan-all dispatch)")
		noMerge := fs.Bool("no-merge", false, "disable multi-query plan merging (every SEQ query runs its own automaton)")
		ckptDir := fs.String("checkpoint-dir", "", "journal directory: every pushed item is logged and a snapshot is cut when the run ends")
		ckptEvery := fs.Int("checkpoint-every", 0, "also cut an automatic snapshot every N journaled records (requires -checkpoint-dir)")
		restore := fs.Bool("restore", false, "recover state from -checkpoint-dir (snapshot + journal replay) before feeding")
		query := fs.String("query", "", "run this ad-hoc snapshot SELECT after the feed and print its rows")
		asOf := fs.String("as-of", "", `AS OF anchor for -query: "LSN 2000" or "30 SECONDS" reads the newest checkpointed table version at or before it`)
		prof := profileFlags(fs)
		_ = fs.Parse(os.Args[2:])
		if fs.NArg() < 1 {
			usage()
		}
		var stop func() error
		if stop, err = prof.start(); err == nil {
			err = runScript(*shards, *stats, *noRoute, *noMerge, *slack, *ckptDir, *ckptEvery, *restore, *query, *asOf, fs.Arg(0), fs.Args()[1:])
			if serr := stop(); err == nil {
				err = serr
			}
		}
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		shards := fs.String("shards", "1,2,4,8", "comma-separated shard counts to sweep")
		batches := fs.String("batch", "", "comma-separated ingestion batch sizes to sweep (default: engine default)")
		events := fs.Int("events", 50000, "tuples to push per configuration")
		clusterBench := fs.Bool("cluster", false, "sweep multi-process loopback cluster sizes on the keyed fan-out workload instead of the shard workloads")
		clusterNodes := fs.String("cluster-nodes", "1,2,4", "comma-separated node counts for -cluster")
		clusterQueries := fs.Int("cluster-queries", 4096, "registered reader-local queries for -cluster")
		clusterBatch := fs.Int("cluster-batch", 1024, "feed flush threshold for -cluster (0 = transport default)")
		clusterReps := fs.Int("cluster-reps", 3, "timed passes per arm for -cluster; each arm reports its best pass")
		minSpeedup := fs.Float64("min-speedup", 2, "fail -cluster if aggregate speedup at the largest node count is below this (0 = report only)")
		maxWire := fs.Float64("max-wire-overhead", 15, "fail -cluster if 1-node wire overhead exceeds this percent (0 = report only)")
		failover := fs.Bool("failover", false, "measure checkpoint overhead and kill-a-node recovery on the cluster data plane instead of the shard workloads")
		failoverNodes := fs.Int("failover-nodes", 2, "cluster size for -failover (the kill must leave a survivor)")
		failoverQueries := fs.Int("failover-queries", 256, "registered reader-local queries for -failover")
		failoverCkpt := fs.Int("failover-ckpt", 8, "per-origin checkpoint cadence in accepted batches for -failover")
		multiquery := fs.Bool("multiquery", false, "sweep registered-query fan-out with routing on/off instead of the shard workloads")
		queries := fs.String("queries", "1,64,256,1024", "comma-separated query counts for -multiquery")
		share := fs.String("share", "0,50,90", "comma-separated prefix-share percentages for -multiquery")
		dbBench := fs.Bool("db", false, "measure stream-DB join probe latency and throughput (legacy vs MVCC arms) instead of the shard workloads")
		dbSizes := fs.String("db-sizes", "1000,30000,300000", "comma-separated table sizes for -db")
		dbProbes := fs.Int("db-probes", 200_000, "indexed probes per arm per size for -db")
		speculation := fs.Bool("speculation", false, "measure consistency-level emission latency and retraction overhead (STRICT/MIDDLE/FAST arms) instead of the shard workloads")
		specReps := fs.Int("spec-reps", 3, "timed passes per arm for -speculation; each arm reports its best pass")
		specMaxP99 := fs.Float64("spec-max-p99-ratio", 0.5, "fail -speculation if FAST p99 emission latency exceeds this fraction of STRICT p99 (0 = report only)")
		specMaxOverhead := fs.Float64("spec-max-overhead", 15, "fail -speculation if the retraction-path overhead exceeds this percent (0 = report only)")
		recovery := fs.Bool("recovery", false, "measure checkpoint/journal overhead, snapshot size, and restore latency instead of the shard workloads")
		ckptEvery := fs.Int("checkpoint-every", 50_000, "automatic snapshot cadence for -recovery, in journaled records")
		maxOverhead := fs.Float64("max-overhead", 0, "fail -recovery if journaling overhead exceeds this percent (0 = report only)")
		jsonPath := fs.String("bench-json", "", "write machine-readable results to this file")
		baseline := fs.String("baseline", "", "bench-json file to compare against; regressions fail the run")
		maxRegress := fs.Float64("max-regress", 15, "max ns/event regression vs -baseline, in percent")
		prof := profileFlags(fs)
		_ = fs.Parse(os.Args[2:])
		var stop func() error
		if stop, err = prof.start(); err == nil {
			switch {
			case *failover:
				err = runBenchFailover(*failoverNodes, *failoverQueries, *events, *clusterBatch,
					*failoverCkpt, *clusterReps, *jsonPath, *maxOverhead)
			case *clusterBench:
				err = runBenchCluster(*clusterQueries, *events, *clusterBatch, *clusterReps, *clusterNodes, *jsonPath, *minSpeedup, *maxWire)
			case *dbBench:
				err = runBenchDB(*dbSizes, *dbProbes, *jsonPath, *baseline, *maxRegress)
			case *speculation:
				err = runBenchSpeculation(*events, *specReps, *jsonPath, *specMaxP99, *specMaxOverhead)
			case *recovery:
				err = runBenchRecovery(*events, *ckptEvery, *jsonPath, *maxOverhead)
			case *multiquery:
				err = runBenchMultiQuery(*queries, *share, *events, *jsonPath, *baseline, *maxRegress)
			default:
				err = runBench(*shards, *batches, *events, *jsonPath, *baseline, *maxRegress)
			}
			if serr := stop(); err == nil {
				err = serr
			}
		}
	case "chaos":
		fs := flag.NewFlagSet("chaos", flag.ExitOnError)
		events := fs.Int("events", 1_000_000, "clean readings to generate")
		seed := fs.Int64("seed", 1, "PRNG seed; equal seeds replay identically")
		slack := fs.Duration("slack", 500*time.Millisecond, "reorder slack; disorder stays within it")
		disorder := fs.Float64("disorder", 0.25, "fraction of readings arriving out of order")
		dup := fs.Float64("dup", 0.01, "fraction of readings duplicated exactly")
		corrupt := fs.Float64("corrupt", 0.001, "fraction of readings shadowed by malformed rows")
		oversize := fs.Float64("oversize", 0.0005, "fraction of readings shadowed by oversized rows")
		late := fs.Float64("late", 0.001, "fraction of readings shadowed by late tuples")
		panicEvery := fs.Int("panic-every", 10_000, "inject a UDF panic every N readings (0 = off)")
		policy := fs.String("policy", "DEAD_LETTER", "lateness policy: ERROR, DROP, or DEAD_LETTER")
		shards := fs.Int("shards", 1, "run the perturbed engine with this many shards (1 = serial)")
		fanout := fs.Int("fanout", 0, "register this many extra selective queries; routed dispatch is checked against a scan-all baseline")
		extended := fs.Bool("extended", false, "register the recovery workload variants (all pairing modes, star, EXCEPTION_SEQ timers, transducer chain)")
		killEvery := fs.Int("kill-every", 0, "crash/recovery mode: kill and recover the perturbed engine every N offered readings (disables -panic-every)")
		killCkpt := fs.Int("checkpoint-every", 0, "durable checkpoint cadence for -kill-every, in offered readings (0 = kill-every/2+1)")
		journalDir := fs.String("journal-dir", "", "journal directory for -kill-every (default: a temp dir, removed afterwards)")
		consistency := fs.String("consistency", "STRICT", "register base-stream queries at this consistency level (STRICT, MIDDLE, or FAST); the fold check proves retractions compensate exactly")
		lateHeavy := fs.Bool("late-heavy", false, "replace uniform disorder with bursty reader-clustered lateness near the slack bound")
		_ = fs.Parse(os.Args[2:])
		level, ok := spec.ParseLevel(*consistency)
		if !ok {
			err = fmt.Errorf("chaos: unknown consistency level %q (want STRICT, MIDDLE, or FAST)", *consistency)
			break
		}
		cfg := chaos.Config{
			Events:          *events,
			Seed:            *seed,
			Slack:           *slack,
			Disorder:        *disorder,
			Duplicate:       *dup,
			Corrupt:         *corrupt,
			Oversize:        *oversize,
			Late:            *late,
			PanicEvery:      *panicEvery,
			Shards:          *shards,
			BatchSize:       512,
			Fanout:          *fanout,
			Extended:        *extended,
			KillEvery:       *killEvery,
			CheckpointEvery: *killCkpt,
			JournalDir:      *journalDir,
			Speculation:     level,
			LateHeavy:       *lateHeavy,
		}
		if cfg.KillEvery > 0 {
			cfg.PanicEvery = 0 // the sacrificial probe is per-engine state
		}
		err = runChaos(cfg, *policy)
	case "node":
		err = cmdNode(os.Args[2:])
	case "feed":
		err = cmdFeed(os.Args[2:])
	case "cluster-soak":
		fs := flag.NewFlagSet("cluster-soak", flag.ExitOnError)
		nodes := fs.String("nodes", "1,4", "comma-separated cluster sizes to certify")
		events := fs.Int("events", 20_000, "randomized events per run")
		seed := fs.Int64("seed", 1, "PRNG seed; equal seeds replay identically")
		shards := fs.Int("shards", 1, "node-local worker shard count")
		batch := fs.Int("batch", 0, "feed flush threshold (0 = default)")
		killEvery := fs.Int("kill-every", 0, "kill-a-node chaos: crash the next -kill-nodes victim after every N feed events (0 = off)")
		killNodes := fs.String("kill-nodes", "0", "comma-separated node indices to crash, in order, for -kill-every")
		ckptEvery := fs.Int("checkpoint-every", 0, "per-origin checkpoint cadence in accepted batches (0 = 8 when killing, else off)")
		_ = fs.Parse(os.Args[2:])
		var plan soakKillPlan
		if plan, err = parseSoakKillPlan(*killEvery, *killNodes, *ckptEvery); err == nil {
			err = runClusterSoak(*nodes, *events, *seed, *shards, *batch, plan)
		}
	case "explain":
		if len(os.Args) < 3 {
			usage()
		}
		err = explainScript(os.Args[2])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslev:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  eslev demo modes                 reproduce the paper's §3.1.1 walkthrough
  eslev demo examples              run the paper's examples on simulated data
  eslev run [-shards N] [-stats] [-no-route-index] [-no-merge]
            [-checkpoint-dir d] [-checkpoint-every N] [-restore]
            [-query "SELECT ..."] [-as-of "LSN n" | -as-of "30 SECONDS"]
            [-cpuprofile f] [-memprofile f] [-trace f] script.esl [s=f.csv]
                                   execute a script over CSV streams; -stats
                                   prints per-query routed/skipped counters and
                                   the plan-merging report; -no-merge gives every
                                   SEQ query its own automaton; -checkpoint-dir
                                   journals every pushed item and cuts durable
                                   snapshots; -restore first recovers state from
                                   that directory; -query runs an ad-hoc
                                   snapshot SELECT after the feed, optionally
                                   AS OF a checkpointed LSN or event time
  eslev bench [-shards 1,2,4] [-batch 1,256] [-events N] [-bench-json out.json]
              [-baseline old.json -max-regress 15] [-cpuprofile f] [-memprofile f] [-trace f]
                                   sweep the sharded-scaling workloads;
                                   with -baseline, fail on ns/event regression
  eslev bench -multiquery [-queries 1,64,256,1024] [-share 0,50,90] [-events N]
              [-bench-json out.json]
                                   sweep query fan-out and prefix-share ratio:
                                   merged vs independent plans, plus a scan-all
                                   control below 1024 queries
  eslev bench -db [-db-sizes 1000,30000,300000] [-db-probes N]
              [-bench-json out.json] [-baseline old.json -max-regress 15]
                                   measure stream-DB join probes, legacy
                                   (RWMutex + copy) vs MVCC (pinned version +
                                   reused buffer) arms; the MVCC indexed probe
                                   must be allocation-free, and -baseline
                                   fails the run on probe ns/op regressions
  eslev bench -recovery [-events N] [-checkpoint-every N] [-max-overhead pct]
              [-bench-json out.json]
                                   measure journaling overhead, snapshot size,
                                   and restore latency; -max-overhead fails the
                                   run past the given percent
  eslev bench -cluster [-cluster-nodes 1,2,4] [-cluster-queries 4096] [-events N]
              [-bench-json out.json] [-min-speedup 2] [-max-wire-overhead 15]
                                   spawn loopback node processes and measure
                                   scale-out on the keyed fan-out workload:
                                   aggregate speedup at the largest cluster vs
                                   the best single-process arm, and the wire
                                   tax of a 1-node cluster
  eslev bench -failover [-failover-nodes 2] [-failover-ckpt N] [-events N]
              [-max-overhead pct] [-bench-json out.json]
                                   measure the availability layer: checkpoint
                                   overhead vs a checkpoint-free cluster, and
                                   recovery time from a node kill to the first
                                   post-fail-over output row
  eslev node [-listen 127.0.0.1:0] [-shards N] [-credit B]
                                   host one engine node: announce the bound
                                   address as "LISTENING addr", serve one feed
                                   session, exit
  eslev feed -nodes a:p,b:p [-batch N] [-stats] script.esl [s=f.csv]
                                   run a script over a node set: registration
                                   ships to homed nodes, CSV tuples route by
                                   placement, merged rows print locally
  eslev cluster-soak [-nodes 1,4] [-events N] [-seed S] [-shards N]
              [-kill-every N] [-kill-nodes 0,2] [-checkpoint-every B]
                                   certify multi-process clusters against the
                                   serial engine row for row, plus the exact
                                   transport accounting identity; -kill-every
                                   crashes node children mid-feed and requires
                                   the same row-for-row match across fail-over
  eslev chaos [-events N] [-seed S] [-slack 500ms] [-disorder 0.25] [-dup 0.01]
              [-corrupt 0.001] [-oversize 0.0005] [-late 0.001] [-panic-every 10000]
              [-policy DEAD_LETTER] [-shards N] [-fanout N] [-extended]
              [-kill-every N] [-checkpoint-every N] [-journal-dir d]
                                   fault-injection soak: perturb a workload and
                                   verify output equivalence + dead-letter accounting;
                                   -kill-every crashes and recovers the engine every
                                   N readings and certifies exactly-once output
  eslev explain script.esl         show the plan of each query in a script`)
	os.Exit(2)
}

// runChaos executes one fault-injection scenario and prints the summary;
// a verification failure (equivalence or accounting) is a non-zero exit.
func runChaos(cfg chaos.Config, policy string) error {
	switch strings.ToUpper(policy) {
	case "ERROR":
		cfg.Policy = stream.LateError
	case "DROP":
		cfg.Policy = stream.LateDrop
	case "DEAD_LETTER":
		cfg.Policy = stream.LateDeadLetter
	default:
		return fmt.Errorf("unknown lateness policy %q (want ERROR, DROP, or DEAD_LETTER)", policy)
	}
	res, err := chaos.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

// ---- profiling hooks --------------------------------------------------------

type profiler struct {
	cpu, mem, trc *string
	cpuFile       *os.File
	trcFile       *os.File
}

// profileFlags registers the standard pprof/trace flags on a FlagSet.
func profileFlags(fs *flag.FlagSet) *profiler {
	p := &profiler{}
	p.cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.mem = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	p.trc = fs.String("trace", "", "write a runtime execution trace to this file")
	return p
}

// start begins CPU profiling and tracing if requested; the returned stop
// flushes them and writes the heap profile.
func (p *profiler) start() (func() error, error) {
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.cpuFile = f
	}
	if *p.trc != "" {
		f, err := os.Create(*p.trc)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		p.trcFile = f
	}
	return p.stop, nil
}

func (p *profiler) stop() error {
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		first = p.cpuFile.Close()
	}
	if p.trcFile != nil {
		trace.Stop()
		if err := p.trcFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		runtime.GC() // materialize final live-set before the heap snapshot
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = err
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// demoModes replays the paper's worked example — the joint tuple history
// [t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4] — through
// SEQ(C1, C2, C3, C4) under each Tuple Pairing Mode.
func demoModes() error {
	history := []struct {
		at     int
		stream string
	}{
		{1, "C1"}, {2, "C1"}, {3, "C2"}, {4, "C3"}, {5, "C3"}, {6, "C2"}, {7, "C4"},
	}
	fmt.Println("joint tuple history: [t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4]")
	fmt.Println("operator: SEQ(C1, C2, C3, C4)")
	for _, mode := range []eslev.PairingMode{eslev.Unrestricted, eslev.Recent, eslev.Chronicle, eslev.Consecutive} {
		m, err := eslev.NewMatcher(eslev.PatternDef{
			Steps: []eslev.PatternStep{{Alias: "C1"}, {Alias: "C2"}, {Alias: "C3"}, {Alias: "C4"}},
			Mode:  mode,
		})
		if err != nil {
			return err
		}
		var events []string
		for _, h := range history {
			tu, err := tupleOn(h.stream, time.Duration(h.at)*time.Second)
			if err != nil {
				return err
			}
			ms, err := m.Push(tu, h.stream)
			if err != nil {
				return err
			}
			for _, match := range ms {
				var parts []string
				for _, g := range match.Groups {
					for _, t := range g {
						parts = append(parts, fmt.Sprintf("t%d:%s", time.Duration(t.TS)/time.Second, t.Schema.Name()))
					}
				}
				events = append(events, "("+strings.Join(parts, ", ")+")")
			}
		}
		fmt.Printf("\nMODE %s:\n", mode)
		if len(events) == 0 {
			fmt.Println("  (no sequence returned)")
		}
		sort.Strings(events)
		for _, ev := range events {
			fmt.Println("  " + ev)
		}
	}
	return nil
}

var demoSchemas = map[string]*eslev.Schema{}

func tupleOn(streamName string, at time.Duration) (*eslev.Tuple, error) {
	s, ok := demoSchemas[streamName]
	if !ok {
		var err error
		s, err = eslev.NewSchema(streamName,
			eslev.Field{Name: "readerid"}, eslev.Field{Name: "tagid"}, eslev.Field{Name: "tagtime"})
		if err != nil {
			return nil, err
		}
		demoSchemas[streamName] = s
	}
	return eslev.NewTuple(s, eslev.TS(at), eslev.Str(streamName), eslev.Str("x"), eslev.Null)
}

// demoExamples runs the paper's example queries over simulated workloads,
// printing a short summary per example.
func demoExamples() error {
	fmt.Println("== Example 1: duplicate filtering ==")
	base := eslev.UniformReadings("readings", 300, 15, 2*time.Second, 1)
	noisy := eslev.NoiseModel{DupProb: 0.4, DupSpread: 700 * time.Millisecond}.Apply(base, 2)
	e := eslev.New()
	if _, err := e.Exec(`
		CREATE STREAM readings(reader_id, tag_id, read_time);
		CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
		INSERT INTO cleaned_readings
		SELECT * FROM readings AS r1
		WHERE NOT EXISTS
		  (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
		   WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);`); err != nil {
		return err
	}
	kept := 0
	e.Subscribe("cleaned_readings", func(*eslev.Tuple) { kept++ })
	if err := noisy.Feed(e.PushTuple); err != nil {
		return err
	}
	fmt.Printf("  %d raw readings (%d clean + duplicates) -> %d after dedup\n\n", noisy.Len(), base.Len(), kept)

	fmt.Println("== Example 6/7: containment on the packing line ==")
	trace, truth := eslev.PackingLine(eslev.PackingConfig{Cases: 20, Seed: 4, LateCaseEvery: 5})
	e2 := eslev.New()
	if _, err := e2.Exec(`
		CREATE STREAM R1(readerid, tagid, tagtime);
		CREATE STREAM R2(readerid, tagid, tagtime);`); err != nil {
		return err
	}
	found := 0
	if _, err := e2.RegisterQuery("c", `
		SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
		FROM R1, R2
		WHERE SEQ(R1*, R2) MODE CHRONICLE
		AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
		AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`,
		func(eslev.Row) { found++ }); err != nil {
		return err
	}
	if err := trace.Feed(e2.PushTuple); err != nil {
		return err
	}
	onTime := 0
	for _, c := range truth {
		if !c.LateCase && !c.Missed {
			onTime++
		}
	}
	fmt.Printf("  %d cases staged (%d on time) -> %d containments detected\n\n", len(truth), onTime, found)

	fmt.Println("== Example 5: clinic workflow violations ==")
	ctrace, ctruth := eslev.ClinicWorkflow(eslev.ClinicConfig{Tests: 15, WrongOrderEvery: 5, StallEvery: 4, Seed: 6})
	e3 := eslev.New()
	if _, err := e3.Exec(`
		CREATE STREAM A1(readerid, tagid, tagtime);
		CREATE STREAM A2(readerid, tagid, tagtime);
		CREATE STREAM A3(readerid, tagid, tagtime);`); err != nil {
		return err
	}
	alerts := 0
	if _, err := e3.RegisterQuery("w", `
		SELECT exception.level, exception.reason FROM A1, A2, A3
		WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]`,
		func(eslev.Row) { alerts++ }); err != nil {
		return err
	}
	if err := ctrace.Feed(e3.PushTuple); err != nil {
		return err
	}
	if err := e3.Heartbeat(e3.Now().Add(2 * time.Hour)); err != nil {
		return err
	}
	bad := 0
	for _, tst := range ctruth {
		if tst.WrongOrder || tst.Stalled {
			bad++
		}
	}
	fmt.Printf("  %d tests (%d violating) -> %d alerts\n\n", len(ctruth), bad, alerts)

	fmt.Println("== Example 8: door security ==")
	dtrace, dtruth := eslev.DoorTraffic(eslev.DoorConfig{Events: 25, TheftEvery: 5, Seed: 8})
	e4 := eslev.New()
	if _, err := e4.Exec(`CREATE STREAM tag_readings(tagid, tagtype, tagtime);`); err != nil {
		return err
	}
	thefts := 0
	if _, err := e4.RegisterQuery("t", `
		SELECT item.tagid FROM tag_readings AS item
		WHERE item.tagtype = 'item' AND NOT EXISTS
		  (SELECT * FROM tag_readings AS person
		   OVER [1 MINUTES PRECEDING AND FOLLOWING item]
		   WHERE person.tagtype = 'person')`,
		func(eslev.Row) { thefts++ }); err != nil {
		return err
	}
	for _, tu := range dtrace.DoorTuples("tag_readings") {
		if err := e4.PushTuple("tag_readings", tu); err != nil {
			return err
		}
	}
	if err := e4.Heartbeat(e4.Now().Add(5 * time.Minute)); err != nil {
		return err
	}
	staged := 0
	for _, ev := range dtruth {
		if ev.Theft {
			staged++
		}
	}
	fmt.Printf("  %d passages (%d thefts staged) -> %d alerts\n", len(dtruth), staged, thefts)
	return nil
}

// explainScript applies a script's DDL and prints the plan of each query.
func explainScript(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Split on semicolons at statement level by re-parsing statement by
	// statement: apply DDL, explain queries.
	e := eslev.New()
	stmts, err := splitStatements(string(src))
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		up := strings.ToUpper(strings.TrimSpace(stmt))
		if strings.HasPrefix(up, "SELECT") || strings.HasPrefix(up, "INSERT") {
			plan, err := e.Explain(stmt)
			if err != nil {
				return fmt.Errorf("explain %q: %v", firstLine(stmt), err)
			}
			fmt.Printf("-- %s\n%s\n\n", firstLine(stmt), plan)
			// Also register it so later queries see derived streams.
			if _, err := e.Exec(stmt + ";"); err != nil {
				return err
			}
			continue
		}
		if _, err := e.Exec(stmt + ";"); err != nil {
			return err
		}
	}
	return nil
}

// splitStatements splits a script into statements, respecting quoted
// strings and line comments (delegates to the engine's splitter).
func splitStatements(src string) ([]string, error) {
	return eslev.SplitStatements(src), nil
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return s
}

// engineLike is the surface runScript needs from either engine flavor; both
// eslev.Engine and eslev.ShardedEngine satisfy it.
type engineLike interface {
	Exec(script string) ([]*eslev.Query, error)
	Subscribe(name string, fn func(*eslev.Tuple)) error
	StreamSchema(name string) (*eslev.Schema, bool)
	Push(streamName string, ts eslev.Timestamp, vals ...eslev.Value) error
	CheckpointNow() error
	Recover(dir string) error
}

// runScript executes an .esl file, feeding the named streams from CSVs and
// printing every row produced by top-level SELECT statements. With a
// checkpoint directory, every pushed item is journaled and a durable
// snapshot is cut when the run ends; -restore recovers the previous run's
// state (snapshot + journal suffix) before any CSV row is fed.
func runScript(shards int, stats, noRoute, noMerge bool, slack time.Duration, ckptDir string, ckptEvery int, restore bool, query, asOf string, path string, feeds []string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if restore && ckptDir == "" {
		return fmt.Errorf("-restore requires -checkpoint-dir")
	}
	if asOf != "" && query == "" {
		return fmt.Errorf("-as-of requires -query")
	}
	if query != "" && shards > 1 {
		return fmt.Errorf("-query needs the serial engine (tables live on one node)")
	}
	if ckptEvery > 0 && ckptDir == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint-dir")
	}
	var opts []eslev.Option
	if slack > 0 {
		opts = append(opts, eslev.WithSlack(slack))
	}
	if noRoute {
		opts = append(opts, eslev.WithoutRouteIndex())
	}
	if noMerge {
		opts = append(opts, eslev.WithoutPlanMerge())
	}
	if ckptDir != "" {
		opts = append(opts, eslev.WithJournal(ckptDir))
		if ckptEvery > 0 {
			opts = append(opts, eslev.WithCheckpointEvery(ckptEvery))
		}
	}
	var e engineLike
	finish := func() error { return nil }
	if shards > 1 {
		se := eslev.NewSharded(shards, opts...)
		finish = se.Close
		e = se
	} else {
		e = eslev.New(opts...)
	}
	if _, err := e.Exec(string(src)); err != nil {
		return err
	}
	var fs []csvFeed
	for _, f := range feeds {
		parts := strings.SplitN(f, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("feed %q must be stream=file.csv", f)
		}
		fs = append(fs, csvFeed{stream: parts[0], file: parts[1]})
	}
	// Echo derived streams prefixed "out" so scripts have a place to send
	// results: INSERT INTO out_alerts SELECT ...
	for _, name := range []string{"out", "out_alerts", "out_events", "out_rows"} {
		_ = e.Subscribe(name, func(t *eslev.Tuple) { fmt.Println(t) })
	}
	if restore {
		if err := e.Recover(ckptDir); err != nil {
			return fmt.Errorf("restore from %s: %w", ckptDir, err)
		}
		fmt.Fprintf(os.Stderr, "eslev: restored state from %s\n", ckptDir)
	}
	rows, err := loadCSVs(e, fs, slack > 0)
	if err != nil {
		return err
	}
	if ckptDir != "" {
		if err := e.CheckpointNow(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "eslev: checkpoint cut in %s\n", ckptDir)
	}
	if query != "" {
		en := e.(*eslev.Engine)
		rows, err := en.QueryAsOf(query, asOf)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Fprintf(os.Stderr, "eslev: query returned %d rows\n", len(rows))
	}
	if stats {
		if se, ok := e.(*eslev.ShardedEngine); ok {
			if err := se.Drain(); err != nil { // settle worker state before reading it
				return err
			}
		}
		printQueryStats(e)
		if en, ok := e.(*eslev.Engine); ok {
			if rep := en.MergeReport(); rep != "" {
				fmt.Println("plan merging:")
				fmt.Print(rep)
			}
		}
	}
	if err := finish(); err != nil { // sharded: drain merged output first
		return err
	}
	fmt.Fprintf(os.Stderr, "eslev: processed %d tuples from %d streams\n", rows, len(fs))
	return nil
}

// printQueryStats renders per-query observability counters — emitted rows,
// routing-index deliveries and proven skips, retained state, and live
// partial-match runs. Sharded engines report the sum across replicas.
func printQueryStats(e engineLike) {
	var stats []eslev.QueryStats
	switch x := e.(type) {
	case *eslev.Engine:
		stats = x.Stats()
	case *eslev.ShardedEngine:
		// Replicas register the same queries in the same order and Stats()
		// sorts deterministically, so position-wise summing is sound (and,
		// unlike keying by name, keeps unnamed queries apart).
		_ = x.ForEachReplica(func(r *eslev.Engine) error {
			rs := r.Stats()
			if stats == nil {
				stats = append(stats, rs...)
				return nil
			}
			for i := range rs {
				if i >= len(stats) {
					break
				}
				a := &stats[i]
				a.Emitted += rs[i].Emitted
				a.State += rs[i].State
				a.Routed += rs[i].Routed
				a.Skipped += rs[i].Skipped
				a.Runs += rs[i].Runs
				a.SpecPending += rs[i].SpecPending
				a.SpecRetracted += rs[i].SpecRetracted
				a.Quarantined = a.Quarantined || rs[i].Quarantined
			}
			return nil
		})
	}
	fmt.Fprintln(os.Stderr, "eslev: per-query stats (routed+skipped = stream arrivals):")
	for _, st := range stats {
		name := st.Name
		if name == "" {
			name = "(unnamed)"
		}
		extra := ""
		if st.Consistency != eslev.Strict {
			extra = fmt.Sprintf("  consistency=%s pending=%d retracted=%d",
				st.Consistency, st.SpecPending, st.SpecRetracted)
		}
		if st.Quarantined {
			extra += "  QUARANTINED"
		}
		fmt.Fprintf(os.Stderr, "  %-20s %-18s emitted=%-8d routed=%-8d skipped=%-8d state=%-6d runs=%d%s\n",
			name, st.Kind, st.Emitted, st.Routed, st.Skipped, st.State, st.Runs, extra)
	}
	if es, ok := e.(interface{ EngineStats() eslev.EngineStats }); ok {
		st := es.EngineStats()
		fmt.Fprintf(os.Stderr, "eslev: engine gauges: watermark=%v reorder-heap=%d gate-pending=%d\n",
			time.Duration(st.Watermark), st.PendingReorder, st.GatePending)
		if st.SpecAsserted > 0 || st.SpecPending > 0 {
			fmt.Fprintf(os.Stderr, "eslev: speculation: pending=%d asserted=%d confirmed=%d retracted=%d late-finals=%d clamped=%d\n",
				st.SpecPending, st.SpecAsserted, st.SpecConfirmed, st.SpecRetracted, st.SpecLateFinals, st.GateClamped)
		}
	}
}

type csvFeed struct {
	stream string
	file   string
}

type csvRow struct {
	stream string
	at     eslev.Timestamp
	vals   []eslev.Value
}

// loadCSVs feeds the recorded rows. Without slack the strict engine needs
// one global time order, so rows from all files are merged by timestamp;
// with slack the recorded arrival order is the point (the boundary absorbs
// the disorder, and CONSISTENCY queries speculate over it), so rows feed in
// file order, files concatenated as given.
func loadCSVs(e engineLike, feeds []csvFeed, arrivalOrder bool) (int, error) {
	var all []csvRow
	for _, f := range feeds {
		rows, err := readCSV(e, f.stream, f.file)
		if err != nil {
			return 0, err
		}
		all = append(all, rows...)
	}
	if !arrivalOrder {
		sort.SliceStable(all, func(i, j int) bool { return all[i].at < all[j].at })
	}
	for _, r := range all {
		if err := e.Push(r.stream, r.at, r.vals...); err != nil {
			return 0, err
		}
	}
	return len(all), nil
}

func readCSV(e engineLike, streamName, file string) ([]csvRow, error) {
	schema, ok := e.StreamSchema(streamName)
	if !ok {
		return nil, fmt.Errorf("stream %s not declared by the script", streamName)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("%s: missing header: %v", file, err)
	}
	cols := make([]int, len(header))
	for i, h := range header {
		pos, ok := schema.Col(strings.TrimSpace(h))
		if !ok {
			return nil, fmt.Errorf("%s: column %q not in stream %s", file, h, streamName)
		}
		cols[i] = pos
	}
	tc := schema.TimeColumn()
	var out []csvRow
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		vals := make([]eslev.Value, schema.Len())
		var at eslev.Timestamp
		for i, field := range rec {
			field = strings.TrimSpace(field)
			pos := cols[i]
			if pos == tc {
				ts, err := parseEventTime(field)
				if err != nil {
					return nil, fmt.Errorf("%s: bad time %q: %v", file, field, err)
				}
				at = ts
				vals[pos] = eslev.Time(ts)
				continue
			}
			vals[pos] = parseCSVValue(field)
		}
		out = append(out, csvRow{stream: streamName, at: at, vals: vals})
	}
	return out, nil
}

func parseEventTime(s string) (eslev.Timestamp, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return eslev.Timestamp(n), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return eslev.TS(d), nil
}

func parseCSVValue(s string) eslev.Value {
	if s == "" {
		return eslev.Null
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return eslev.Int(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return eslev.Float(f)
	}
	if s == "true" || s == "false" {
		return eslev.Bool(s == "true")
	}
	return eslev.Str(s)
}

// ---- bench: sharded-scaling sweep -------------------------------------------

type benchResult struct {
	Workload     string  `json:"workload"`
	Shards       int     `json:"shards"`
	Batch        int     `json:"batch,omitempty"`   // 0 = engine default
	Queries      int     `json:"queries,omitempty"` // multiquery sweep only
	SharePct     int     `json:"share_pct,omitempty"`
	RouteIndex   bool    `json:"route_index,omitempty"`
	Merged       bool    `json:"merged,omitempty"`
	Events       int     `json:"events"`
	Matches      int64   `json:"matches"`
	WallMs       float64 `json:"wall_ms"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type benchReport struct {
	CPUs       int           `json:"cpus"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
}

// runBench sweeps the two keyed workloads of EXPERIMENTS.md over the given
// shard counts (and optionally ingestion batch sizes), printing and
// optionally emitting throughput per configuration as JSON. Matches are
// also reported so runs can be checked for output equivalence across
// configurations. With baselinePath set, results are compared to a prior
// bench-json capture and the run fails on ns/event regressions beyond
// maxRegress percent.
func runBench(shardList, batchList string, events int, jsonPath, baselinePath string, maxRegress float64) error {
	parseInts := func(flag, s string) ([]int, error) {
		var out []int
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad %s entry %q", flag, part)
			}
			out = append(out, n)
		}
		return out, nil
	}
	counts, err := parseInts("-shards", shardList)
	if err != nil {
		return err
	}
	batches := []int{0} // engine default
	if batchList != "" {
		if batches, err = parseInts("-batch", batchList); err != nil {
			return err
		}
	}
	report := benchReport{CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	fmt.Printf("cpus=%d gomaxprocs=%d events=%d\n", report.CPUs, report.GoMaxProcs, events)
	for _, workload := range []string{"ex6-seq", "containment"} {
		// Fixed untimed warm-up per workload family before any timed run.
		if _, err := benchWorkload(workload, counts[0], batches[0], benchWarmupEvents(events)); err != nil {
			return err
		}
		for _, n := range counts {
			for _, batch := range batches {
				res, err := benchWorkload(workload, n, batch, events)
				if err != nil {
					return err
				}
				report.Results = append(report.Results, res)
				label := ""
				if batch > 0 {
					label = fmt.Sprintf(" batch=%-4d", batch)
				}
				fmt.Printf("%-12s shards=%d%s  %9.1f ms  %10.0f events/s  matches=%d\n",
					res.Workload, res.Shards, label, res.WallMs, res.EventsPerSec, res.Matches)
			}
		}
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eslev: wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		return compareBaseline(report, baselinePath, maxRegress)
	}
	return nil
}

// compareBaseline checks every result against the matching
// (workload, shards) entry of a previous bench-json capture. Batch-swept
// results only compare when the baseline recorded the same batch size.
func compareBaseline(report benchReport, baselinePath string, maxRegress float64) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %v", baselinePath, err)
	}
	find := func(r benchResult) *benchResult {
		for i := range base.Results {
			b := &base.Results[i]
			if b.Workload == r.Workload && b.Shards == r.Shards && b.Batch == r.Batch &&
				b.Queries == r.Queries && b.SharePct == r.SharePct &&
				b.RouteIndex == r.RouteIndex && b.Merged == r.Merged {
				return b
			}
		}
		return nil
	}
	var regressions []string
	compared := 0
	for _, r := range report.Results {
		b := find(r)
		if b == nil || b.NsPerEvent <= 0 {
			continue
		}
		compared++
		label := fmt.Sprintf("%s shards=%d", r.Workload, r.Shards)
		if r.Queries > 0 {
			label = fmt.Sprintf("%s queries=%d share=%d route=%v merged=%v",
				r.Workload, r.Queries, r.SharePct, r.RouteIndex, r.Merged)
		}
		deltaPct := (r.NsPerEvent - b.NsPerEvent) / b.NsPerEvent * 100
		verdict := "ok"
		if deltaPct > maxRegress {
			verdict = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/event (%+.1f%%)",
				label, b.NsPerEvent, r.NsPerEvent, deltaPct))
		}
		fmt.Printf("vs %s: %-32s  %8.0f -> %8.0f ns/event  %+6.1f%%  %s\n",
			baselinePath, label, b.NsPerEvent, r.NsPerEvent, deltaPct, verdict)
	}
	if compared == 0 {
		return fmt.Errorf("no comparable (workload, shards) entries in %s", baselinePath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("ns/event regressed beyond %.0f%%:\n  %s", maxRegress, strings.Join(regressions, "\n  "))
	}
	return nil
}

func benchWorkload(name string, shards, batch, events int) (benchResult, error) {
	e := eslev.NewSharded(shards)
	defer e.Close()
	if batch > 0 {
		e.SetBatchSize(batch)
	}
	matches := int64(0)
	onRow := func(eslev.Row) { matches++ } // combiner serializes callbacks
	var push func(i int) error
	switch name {
	case "ex6-seq":
		if _, err := e.Exec(`
			CREATE STREAM C1(readerid, tagid, tagtime);
			CREATE STREAM C2(readerid, tagid, tagtime);
			CREATE STREAM C3(readerid, tagid, tagtime);
			CREATE STREAM C4(readerid, tagid, tagtime);`); err != nil {
			return benchResult{}, err
		}
		if _, err := e.RegisterQuery("bench", `
			SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
			FROM C1, C2, C3, C4
			WHERE SEQ(C1, C2, C3, C4)
			OVER [30 MINUTES PRECEDING C4] MODE CHRONICLE
			AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid`, onRow); err != nil {
			return benchResult{}, err
		}
		trace, _ := eslev.QualityLine(eslev.QualityConfig{Items: 2000, DropRate: 0.1, Seed: 4})
		readings := trace.Readings
		last := readings[len(readings)-1].At
		span := last + eslev.TS(time.Minute)
		push = func(i int) error {
			r := readings[i%len(readings)]
			at := r.At + eslev.Timestamp(i/len(readings))*span
			return e.Push(r.Stream, at, eslev.Str(r.ReaderID), eslev.Str(r.TagID), eslev.Null)
		}
	case "containment":
		const lines = 8
		if _, err := e.Exec(`
			CREATE STREAM R1(lineid, tagid, tagtime);
			CREATE STREAM R2(lineid, tagid, tagtime);`); err != nil {
			return benchResult{}, err
		}
		if _, err := e.RegisterQuery("bench", `
			SELECT R2.lineid, COUNT(R1*), R2.tagid, R2.tagtime
			FROM R1, R2
			WHERE SEQ(R1*, R2) MODE CHRONICLE
			AND R1.lineid = R2.lineid
			AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
			AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS`, onRow); err != nil {
			return benchResult{}, err
		}
		push = func(i int) error {
			line := fmt.Sprintf("L%d", i%lines)
			at := eslev.TS(time.Duration(i) * 100 * time.Millisecond)
			if (i/lines)%4 < 3 {
				return e.Push("R1", at, eslev.Str(line), eslev.Str(fmt.Sprintf("p%d", i)), eslev.Time(at))
			}
			return e.Push("R2", at, eslev.Str(line), eslev.Str(fmt.Sprintf("case%d", i)), eslev.Time(at))
		}
	default:
		return benchResult{}, fmt.Errorf("unknown workload %q", name)
	}
	start := time.Now()
	for i := 0; i < events; i++ {
		if err := push(i); err != nil {
			return benchResult{}, err
		}
	}
	if err := e.Drain(); err != nil {
		return benchResult{}, err
	}
	wall := time.Since(start)
	return benchResult{
		Workload:     name,
		Shards:       shards,
		Batch:        batch,
		Events:       events,
		Matches:      matches,
		WallMs:       float64(wall) / float64(time.Millisecond),
		NsPerEvent:   float64(wall) / float64(events),
		EventsPerSec: float64(events) / wall.Seconds(),
	}, nil
}

// ---- bench -multiquery: registered-query fan-out sweep ----------------------

// multiQueryBatch is the ingestion batch size of the fan-out sweep; routing
// gains show on both the per-tuple and batched paths, so one size suffices.
const multiQueryBatch = 256

// multiQueryReps is how many times each fan-out configuration is timed;
// the best run is reported, which keeps the regression gate stable on
// noisy single-core machines.
const multiQueryReps = 3

// runBenchMultiQuery sweeps registered-query fan-out crossed with the
// prefix-share ratio: at share=S, S percent of the queries open with an
// identical first SEQ step (same stream, predicate, key, and window) so the
// planner folds them into one shared automaton. Each configuration runs
// three arms over an identical pre-built feed — merged (default engine),
// independent (plan merging off), and a scan-all control (routing index
// off, skipped at >=1024 queries where it is pathological) — and the
// merged-vs-independent throughput ratio is the headline number. Merged
// and independent arms must report identical match counts; a mismatch
// fails the run.
func runBenchMultiQuery(queriesList, shareList string, events int, jsonPath, baselinePath string, maxRegress float64) error {
	parseInts := func(flag, s string, min int) ([]int, error) {
		var out []int
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < min || n > 100 && flag == "-share" {
				return nil, fmt.Errorf("bad %s entry %q", flag, part)
			}
			out = append(out, n)
		}
		return out, nil
	}
	counts, err := parseInts("-queries", queriesList, 1)
	if err != nil {
		return err
	}
	shares, err := parseInts("-share", shareList, 0)
	if err != nil {
		return err
	}
	report := benchReport{CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	fmt.Printf("cpus=%d gomaxprocs=%d events=%d batch=%d\n",
		report.CPUs, report.GoMaxProcs, events, multiQueryBatch)
	for _, n := range counts {
		for _, share := range shares {
			if share > 0 && n*share/100 == 0 {
				continue // rounds to zero shared queries: identical to share=0
			}
			type armSpec struct {
				name         string
				route, merge bool
			}
			arms := []armSpec{{"merged", true, true}, {"independent", true, false}}
			if n < 1024 {
				arms = append(arms, armSpec{"scan-all", false, true})
			}
			// Fixed untimed warm-up per configuration before any timed arm.
			if _, err := benchMultiQueryFanout(n, share, true, true, benchWarmupEvents(events)); err != nil {
				return err
			}
			byName := map[string]benchResult{}
			for _, a := range arms {
				// Best of multiQueryReps runs: single runs of the small
				// configurations finish in tens of milliseconds and jitter
				// more than the regression-gate threshold.
				var res benchResult
				for rep := 0; rep < multiQueryReps; rep++ {
					r, err := benchMultiQueryFanout(n, share, a.route, a.merge, events)
					if err != nil {
						return err
					}
					if rep == 0 || r.NsPerEvent < res.NsPerEvent {
						res = r
					}
				}
				report.Results = append(report.Results, res)
				byName[a.name] = res
				fmt.Printf("%-14s queries=%-4d share=%-2d route=%-5v merged=%-5v  %9.1f ms  %10.0f events/s  matches=%d\n",
					res.Workload, res.Queries, res.SharePct, res.RouteIndex, res.Merged,
					res.WallMs, res.EventsPerSec, res.Matches)
			}
			merged, indep := byName["merged"], byName["independent"]
			if merged.Matches != indep.Matches {
				return fmt.Errorf("queries=%d share=%d: merged arm found %d matches, independent %d",
					n, share, merged.Matches, indep.Matches)
			}
			fmt.Printf("%-14s queries=%-4d share=%-2d merge speedup: %.2fx\n",
				"", n, share, indep.NsPerEvent/merged.NsPerEvent)
			if sa, ok := byName["scan-all"]; ok {
				fmt.Printf("%-14s queries=%-4d share=%-2d route speedup: %.2fx\n",
					"", n, share, sa.NsPerEvent/merged.NsPerEvent)
			}
		}
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eslev: wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		return compareBaseline(report, baselinePath, maxRegress)
	}
	return nil
}

// benchMultiQueryFanout times one fan-out configuration: nQueries keyed SEQ
// queries over a feed whose reader ids cycle so every C2 tuple is relevant
// to exactly one query. The first sharePct percent of the queries open with
// the same first step — C1 at the shared 'DOCK' reader, keyed on tagid,
// under the same window — so the planner merges them into one automaton
// with per-query acceptance; the rest pin C1 to their own reader and stay
// independent. The feed sends C1 through DOCK for pairs aimed at shared
// queries, which is exactly the fan-out merging collapses: unmerged, every
// shared query's matcher consumes each DOCK tuple; merged, one does. The
// feed is built before the clock starts; only engine work is measured.
func benchMultiQueryFanout(nQueries, sharePct int, route, merge bool, events int) (benchResult, error) {
	nShared := nQueries * sharePct / 100
	var opts []eslev.Option
	if !route {
		opts = append(opts, eslev.WithoutRouteIndex())
	}
	if !merge {
		opts = append(opts, eslev.WithoutPlanMerge())
	}
	e := eslev.New(opts...)
	if _, err := e.Exec(`
		CREATE STREAM C1(readerid, tagid, tagtime);
		CREATE STREAM C2(readerid, tagid, tagtime);`); err != nil {
		return benchResult{}, err
	}
	var matches int64
	onRow := func(eslev.Row) { matches++ }
	for qi := 0; qi < nQueries; qi++ {
		c1Reader := fmt.Sprintf("R%d", qi)
		if qi < nShared {
			c1Reader = "DOCK"
		}
		sql := fmt.Sprintf(`
			SELECT C2.tagid, C2.tagtime FROM C1, C2
			WHERE SEQ(C1, C2) OVER [1 SECONDS PRECEDING C2]
			AND C1.readerid = '%s' AND C2.readerid = 'R%d'
			AND C1.tagid = C2.tagid`, c1Reader, qi)
		if _, err := e.RegisterQuery(fmt.Sprintf("q%04d", qi), sql, onRow); err != nil {
			return benchResult{}, err
		}
	}
	const tags = 16
	schemas := map[string]*eslev.Schema{}
	for _, s := range []string{"C1", "C2"} {
		schemas[s], _ = e.StreamSchema(s)
	}
	items := make([]eslev.Item, 0, events)
	for i := 0; i < events; i++ {
		pair := i / 2
		q := pair % nQueries
		name := "C1"
		reader := fmt.Sprintf("R%d", q)
		if i%2 == 0 && q < nShared {
			reader = "DOCK"
		}
		if i%2 == 1 {
			name = "C2"
		}
		at := eslev.TS(time.Duration(i+1) * 10 * time.Millisecond)
		tu, err := eslev.NewTuple(schemas[name], at,
			eslev.Str(reader),
			eslev.Str(fmt.Sprintf("t%d", pair%tags)),
			eslev.Null)
		if err != nil {
			return benchResult{}, err
		}
		items = append(items, eslev.Of(tu))
	}
	start := time.Now()
	for off := 0; off < len(items); off += multiQueryBatch {
		hi := off + multiQueryBatch
		if hi > len(items) {
			hi = len(items)
		}
		if err := e.PushBatch(items[off:hi]); err != nil {
			return benchResult{}, err
		}
	}
	wall := time.Since(start)
	return benchResult{
		Workload:     "multiquery-seq",
		Shards:       1,
		Batch:        multiQueryBatch,
		Queries:      nQueries,
		SharePct:     sharePct,
		RouteIndex:   route,
		Merged:       merge,
		Events:       events,
		Matches:      matches,
		WallMs:       float64(wall) / float64(time.Millisecond),
		NsPerEvent:   float64(wall) / float64(events),
		EventsPerSec: float64(events) / wall.Seconds(),
	}, nil
}

// ---- bench -recovery: checkpoint/journal overhead ---------------------------

// recoveryReport is the machine-readable result of `bench -recovery`:
// journaling overhead on the hot path, the size of one full snapshot, and
// the latency of cutting a checkpoint and of recovering from one.
type recoveryReport struct {
	CPUs                int     `json:"cpus"`
	Events              int     `json:"events"`
	CheckpointEvery     int     `json:"checkpoint_every"`
	BaselineNsPerEvent  float64 `json:"baseline_ns_per_event"`
	JournaledNsPerEvent float64 `json:"journaled_ns_per_event"`
	OverheadPct         float64 `json:"overhead_pct"`
	SnapshotBytes       int64   `json:"snapshot_bytes"`
	CheckpointMs        float64 `json:"checkpoint_ms"`
	RestoreMs           float64 `json:"restore_ms"`
}

// recoveryWorkload builds a serial engine running the representative
// steady-state query mix the kill/recover chaos matrix certifies: stateless
// filter, DISTINCT, time- and rows-windowed grouped aggregates, SEQ in all
// four pairing modes, a star sequence, and EXCEPTION_SEQ timers. Both the
// baseline and the journaled engine run with the fault-tolerant ingest
// boundary, the configuration recovery is designed around, so the measured
// delta isolates the durability cost.
func recoveryWorkload(opts ...eslev.Option) (*eslev.Engine, error) {
	e := eslev.New(append([]eslev.Option{
		eslev.WithSlack(100 * time.Millisecond),
		eslev.WithLateness(eslev.LateDeadLetter),
	}, opts...)...)
	if _, err := e.Exec(`CREATE STREAM A(tagid, n); CREATE STREAM B(tagid, n);`); err != nil {
		return nil, err
	}
	for _, q := range []struct{ name, sql string }{
		{"filter", `SELECT tagid, n FROM A WHERE n % 3 = 0`},
		{"distinct", `SELECT DISTINCT tagid FROM A`},
		{"aggtime", `SELECT tagid, COUNT(*), SUM(n), AVG(n) FROM B
			OVER (RANGE 200 MILLISECONDS PRECEDING CURRENT) GROUP BY tagid`},
		{"aggrows", `SELECT MIN(n), MAX(n) FROM A OVER (ROWS 5 PRECEDING)`},
		{"seq", `SELECT A.tagid, B.n FROM A, B
			WHERE SEQ(A, B) OVER [15 MILLISECONDS PRECEDING B] AND A.tagid = B.tagid`},
		{"recent", `SELECT A.tagid, B.n FROM A, B
			WHERE SEQ(A, B) OVER [300 MILLISECONDS PRECEDING B] MODE RECENT
			AND A.tagid = B.tagid`},
		{"chronicle", `SELECT A.tagid, B.n FROM A, B
			WHERE SEQ(A, B) OVER [15 MILLISECONDS PRECEDING B] MODE CHRONICLE
			AND B.n = A.n + 1`},
		{"consecutive", `SELECT A.tagid, B.n FROM A, B
			WHERE SEQ(A, B) OVER [300 MILLISECONDS PRECEDING B] MODE CONSECUTIVE
			AND A.tagid = B.tagid`},
		{"star", `SELECT COUNT(A*), B.tagid FROM A, B
			WHERE SEQ(A*, B) MODE CHRONICLE AND B.n = A.n + 1`},
		{"exc", `SELECT A.tagid FROM A, B
			WHERE EXCEPTION_SEQ(A, B) OVER [25 MILLISECONDS FOLLOWING A]
			AND B.n = A.n + 1`},
	} {
		if _, err := e.RegisterQuery(q.name, q.sql, func(eslev.Row) {}); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// recoveryItems generates the feed: readings alternate streams A and B at a
// 10ms cadence, each consecutive (A, B) pair sharing one of 64 tags so the
// keyed SEQ queries pair them; every 11th B reading is withheld so
// EXCEPTION_SEQ has real timers to fire.
func recoveryItems(e *eslev.Engine, events int) ([]eslev.Item, error) {
	sa, _ := e.StreamSchema("A")
	sb, _ := e.StreamSchema("B")
	items := make([]eslev.Item, 0, events)
	for i := 0; len(items) < events; i++ {
		s := sa
		if i%2 == 1 {
			s = sb
			if i%11 == 0 {
				continue // missing B reading: lets an exception timer fire
			}
		}
		tu, err := eslev.NewTuple(s, eslev.TS(time.Duration(i+1)*10*time.Millisecond),
			eslev.Str(fmt.Sprintf("tag%02d", (i/2)%64)), eslev.Int(int64(i)))
		if err != nil {
			return nil, err
		}
		items = append(items, eslev.Of(tu))
	}
	return items, nil
}

// feedRecoveryItems pushes the feed in 256-item batches and drains.
func feedRecoveryItems(e *eslev.Engine, items []eslev.Item) (time.Duration, error) {
	const batch = 256
	start := time.Now()
	for off := 0; off < len(items); off += batch {
		hi := off + batch
		if hi > len(items) {
			hi = len(items)
		}
		if err := e.PushBatch(items[off:hi]); err != nil {
			return 0, err
		}
	}
	if err := e.Drain(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// runBenchRecovery times the same workload with and without the journal
// (automatic checkpoints at the given cadence), then measures one forced
// checkpoint, its snapshot size, and a full Recover into a fresh engine.
// The best of three repetitions is reported per mode, which keeps the
// overhead figure stable on noisy machines.
func runBenchRecovery(events, ckptEvery int, jsonPath string, maxOverhead float64) error {
	const reps = 3
	probe, err := recoveryWorkload()
	if err != nil {
		return err
	}
	items, err := recoveryItems(probe, events)
	if err != nil {
		return err
	}
	root, err := os.MkdirTemp("", "eslev-bench-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	var baseWall time.Duration
	for r := 0; r < reps; r++ {
		e, err := recoveryWorkload()
		if err != nil {
			return err
		}
		wall, err := feedRecoveryItems(e, items)
		if err != nil {
			return err
		}
		if baseWall == 0 || wall < baseWall {
			baseWall = wall
		}
	}

	var jWall, ckptDur time.Duration
	var dir string // journal dir of the best journaled rep, kept for restore
	for r := 0; r < reps; r++ {
		d := fmt.Sprintf("%s/rep%d", root, r)
		e, err := recoveryWorkload(eslev.WithJournal(d), eslev.WithCheckpointEvery(ckptEvery))
		if err != nil {
			return err
		}
		wall, err := feedRecoveryItems(e, items)
		if err != nil {
			return err
		}
		ckStart := time.Now()
		if err := e.CheckpointNow(); err != nil {
			return err
		}
		ck := time.Since(ckStart)
		if err := e.CloseJournal(); err != nil {
			return err
		}
		if jWall == 0 || wall < jWall {
			jWall, ckptDur, dir = wall, ck, d
		}
	}

	path, _, ok, err := snapshot.LatestSnapshot(dir)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no snapshot found in %s", dir)
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fresh, err := recoveryWorkload(eslev.WithJournal(dir))
	if err != nil {
		return err
	}
	restoreStart := time.Now()
	if err := fresh.Recover(dir); err != nil {
		return err
	}
	restoreDur := time.Since(restoreStart)
	if err := fresh.CloseJournal(); err != nil {
		return err
	}

	rep := recoveryReport{
		CPUs:                runtime.NumCPU(),
		Events:              events,
		CheckpointEvery:     ckptEvery,
		BaselineNsPerEvent:  float64(baseWall) / float64(events),
		JournaledNsPerEvent: float64(jWall) / float64(events),
		OverheadPct:         (float64(jWall) - float64(baseWall)) / float64(baseWall) * 100,
		SnapshotBytes:       info.Size(),
		CheckpointMs:        float64(ckptDur) / float64(time.Millisecond),
		RestoreMs:           float64(restoreDur) / float64(time.Millisecond),
	}
	fmt.Printf("events=%d checkpoint-every=%d\n", events, ckptEvery)
	fmt.Printf("baseline:   %8.0f ns/event\n", rep.BaselineNsPerEvent)
	fmt.Printf("journaled:  %8.0f ns/event  (%+.1f%% overhead)\n", rep.JournaledNsPerEvent, rep.OverheadPct)
	fmt.Printf("checkpoint: %8.2f ms  snapshot %d bytes\n", rep.CheckpointMs, rep.SnapshotBytes)
	fmt.Printf("restore:    %8.2f ms  (snapshot + journal suffix replay)\n", rep.RestoreMs)
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eslev: wrote %s\n", jsonPath)
	}
	if maxOverhead > 0 && rep.OverheadPct > maxOverhead {
		return fmt.Errorf("journaling overhead %.1f%% exceeds budget %.0f%%", rep.OverheadPct, maxOverhead)
	}
	return nil
}
