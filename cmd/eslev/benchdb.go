package main

// bench -db: the stream–DB join probe microbenchmark behind BENCH_DB.json.
//
// Two arms answer the same probes over identical rows:
//
//   - legacy: the pre-MVCC table — a global RWMutex, a hash-bucket index,
//     a fresh result slice per lookup, and a full row-vector copy for the
//     non-equality (Snapshot) path. Reimplemented here so the comparison
//     survives the old code's removal.
//   - mvcc: the live internal/db table — one atomic version pin, then
//     lock-free Probe into a caller-owned buffer and AppendAll for the
//     non-equality path.
//
// Reported per table size: indexed-probe ns/op and allocs/op (the mvcc arm
// must measure 0 — enforced), non-equality scan ns/op, and join events/s
// (probe + touch every match). The -baseline gate compares probe ns/op.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/stream"
)

type dbBenchResult struct {
	Arm              string  `json:"arm"` // "legacy" or "mvcc"
	Rows             int     `json:"rows"`
	ProbeNsPerOp     float64 `json:"probe_ns_per_op"`
	ProbeAllocsPerOp float64 `json:"probe_allocs_per_op"`
	ScanNsPerOp      float64 `json:"scan_ns_per_op"`
	JoinEventsPerSec float64 `json:"join_events_per_sec"`
}

type dbBenchReport struct {
	CPUs    int             `json:"cpus"`
	Probes  int             `json:"probes"`
	Results []dbBenchResult `json:"results"`
}

// legacyTable reproduces the retired pre-MVCC internal/db data structure:
// every reader takes the RWMutex, indexed lookups allocate a fresh result
// slice, and the non-equality path copies the whole row vector.
type legacyTable struct {
	mu    sync.RWMutex
	rows  []*db.Row
	index map[uint64][]*db.Row // tag hash -> bucket
	pos   int                  // indexed column
}

func newLegacyTable(pos int) *legacyTable {
	return &legacyTable{index: make(map[uint64][]*db.Row), pos: pos}
}

func (t *legacyTable) insert(r *db.Row) {
	t.mu.Lock()
	t.rows = append(t.rows, r)
	h := r.Vals[t.pos].Hash()
	t.index[h] = append(t.index[h], r)
	t.mu.Unlock()
}

func (t *legacyTable) lookupEqual(v stream.Value) []*db.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*db.Row
	for _, r := range t.index[v.Hash()] {
		if r.Vals[t.pos].Equal(v) {
			out = append(out, r)
		}
	}
	return out
}

func (t *legacyTable) snapshot() []*db.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*db.Row, len(t.rows))
	copy(out, t.rows)
	return out
}

// buildDBBenchTables loads both arms with the same size rows: distinct tag
// ids, a handful of locations.
func buildDBBenchTables(size int) (*legacyTable, *db.Table, error) {
	schema := stream.MustSchema("bench_history",
		stream.Field{Name: "tagid", Type: stream.TInt},
		stream.Field{Name: "location", Type: stream.TString},
		stream.Field{Name: "seen", Type: stream.TInt})
	tbl := db.NewTable(schema)
	if err := tbl.CreateIndex("tagid"); err != nil {
		return nil, nil, err
	}
	leg := newLegacyTable(0)
	locs := []stream.Value{stream.Str("dock"), stream.Str("shelf"), stream.Str("truck"), stream.Str("gate")}
	for i := 0; i < size; i++ {
		vals := []stream.Value{stream.Int(int64(i)), locs[i%len(locs)], stream.Int(int64(i * 7))}
		if _, err := tbl.Insert(vals); err != nil {
			return nil, nil, err
		}
		leg.insert(&db.Row{ID: uint64(i + 1), Vals: vals})
	}
	return leg, tbl, nil
}

// timedAllocs runs fn n times and reports (ns/op, allocs/op) from the
// runtime's cumulative malloc counter. Single goroutine, so the delta is
// attributable to fn.
func timedAllocs(n int, fn func(i int)) (float64, float64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(wall) / float64(n), float64(after.Mallocs-before.Mallocs) / float64(n)
}

// bestOf takes the fastest of three timedAllocs passes (and the lowest
// alloc reading, since the malloc counter is process-global). Probe ops
// run tens of nanoseconds, so a single pass is at the mercy of scheduler
// noise on a shared box — min-of-N is what the gate compares.
func bestOf(n int, fn func(i int)) (float64, float64) {
	bestNs, bestAllocs := 0.0, 0.0
	for pass := 0; pass < 3; pass++ {
		ns, allocs := timedAllocs(n, fn)
		if pass == 0 || ns < bestNs {
			bestNs = ns
		}
		if pass == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}
	return bestNs, bestAllocs
}

func benchDBSize(size, probes int) ([]dbBenchResult, error) {
	leg, tbl, err := buildDBBenchTables(size)
	if err != nil {
		return nil, err
	}
	// Deterministic probe keys, ~90% hits.
	rng := rand.New(rand.NewSource(42))
	keys := make([]stream.Value, probes)
	for i := range keys {
		k := rng.Intn(size + size/8 + 1)
		keys[i] = stream.Int(int64(k))
	}
	// Scan (non-equality join) reps: size-scaled so big tables stay quick.
	scanReps := 2_000_000 / (size + 1)
	if scanReps < 16 {
		scanReps = 16 // large tables are DRAM-bound and noisy; keep enough reps to average
	}
	sink := 0

	// Legacy arm.
	var res []dbBenchResult
	{
		// Warm-up.
		for i := 0; i < probes/10+1; i++ {
			sink += len(leg.lookupEqual(keys[i%len(keys)]))
		}
		probeNs, probeAllocs := bestOf(probes, func(i int) {
			sink += len(leg.lookupEqual(keys[i]))
		})
		scanNs, _ := timedAllocs(scanReps, func(int) {
			sink += len(leg.snapshot())
		})
		start := time.Now()
		for i := 0; i < probes; i++ {
			for _, r := range leg.lookupEqual(keys[i]) {
				sink += len(r.Vals)
			}
		}
		joinPerSec := float64(probes) / time.Since(start).Seconds()
		res = append(res, dbBenchResult{Arm: "legacy", Rows: size,
			ProbeNsPerOp: probeNs, ProbeAllocsPerOp: probeAllocs,
			ScanNsPerOp: scanNs, JoinEventsPerSec: joinPerSec})
	}

	// MVCC arm: pin once per batch of probes, reuse one buffer.
	{
		ver := tbl.Head()
		buf := make([]*db.Row, 0, 16)
		for i := 0; i < probes/10+1; i++ { // warm-up
			buf = ver.Probe(0, keys[i%len(keys)], buf[:0])
			sink += len(buf)
		}
		scanBuf := make([]*db.Row, 0, size)
		probeNs, probeAllocs := bestOf(probes, func(i int) {
			buf = ver.Probe(0, keys[i], buf[:0])
			sink += len(buf)
		})
		scanNs, _ := timedAllocs(scanReps, func(int) {
			scanBuf = ver.AppendAll(scanBuf[:0])
			sink += len(scanBuf)
		})
		start := time.Now()
		for i := 0; i < probes; i++ {
			buf = ver.Probe(0, keys[i], buf[:0])
			for _, r := range buf {
				sink += len(r.Vals)
			}
		}
		joinPerSec := float64(probes) / time.Since(start).Seconds()
		// The malloc counter is process-global, so runtime background
		// activity can contribute a few counts per hundred thousand ops; a
		// real per-op allocation reads ~1.0 (the legacy arm reads ~0.9).
		if probeAllocs > 0.01 {
			return nil, fmt.Errorf("mvcc indexed probe allocated %.3f allocs/op at %d rows; the hot path must be allocation-free", probeAllocs, size)
		}
		res = append(res, dbBenchResult{Arm: "mvcc", Rows: size,
			ProbeNsPerOp: probeNs, ProbeAllocsPerOp: probeAllocs,
			ScanNsPerOp: scanNs, JoinEventsPerSec: joinPerSec})
	}
	_ = sink
	return res, nil
}

// runBenchDB sweeps both arms over the table sizes, enforces the
// zero-allocation probe invariant on the mvcc arm, and (with -baseline)
// fails on probe ns/op regressions beyond maxRegress percent.
func runBenchDB(sizeList string, probes int, jsonPath, baselinePath string, maxRegress float64) error {
	var sizes []int
	for _, part := range strings.Split(sizeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -db-sizes entry %q", part)
		}
		sizes = append(sizes, n)
	}
	report := dbBenchReport{CPUs: runtime.NumCPU(), Probes: probes}
	fmt.Printf("cpus=%d probes=%d\n", report.CPUs, probes)
	for _, size := range sizes {
		res, err := benchDBSize(size, probes)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res...)
		for _, r := range res {
			fmt.Printf("%-7s rows=%-7d probe %8.1f ns/op %5.2f allocs/op   scan %10.0f ns/op   join %11.0f events/s\n",
				r.Arm, r.Rows, r.ProbeNsPerOp, r.ProbeAllocsPerOp, r.ScanNsPerOp, r.JoinEventsPerSec)
		}
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eslev: wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		return compareDBBaseline(report, baselinePath, maxRegress)
	}
	return nil
}

// compareDBBaseline gates probe ns/op against a prior BENCH_DB.json
// capture, matching results by (arm, rows). Only the mvcc arm is gated:
// it is the live hot path. The legacy arm is a frozen reimplementation
// kept for comparison — its code cannot regress, and its alloc-heavy
// probes swing with GC/machine state far beyond any useful threshold.
func compareDBBaseline(report dbBenchReport, baselinePath string, maxRegress float64) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base dbBenchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %v", baselinePath, err)
	}
	find := func(r dbBenchResult) *dbBenchResult {
		for i := range base.Results {
			b := &base.Results[i]
			if b.Arm == r.Arm && b.Rows == r.Rows {
				return b
			}
		}
		return nil
	}
	var regressions []string
	compared := 0
	for _, r := range report.Results {
		if r.Arm != "mvcc" {
			continue
		}
		b := find(r)
		if b == nil || b.ProbeNsPerOp <= 0 {
			continue
		}
		compared++
		deltaPct := (r.ProbeNsPerOp - b.ProbeNsPerOp) / b.ProbeNsPerOp * 100
		verdict := "ok"
		if deltaPct > maxRegress {
			verdict = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s rows=%d: %.1f -> %.1f ns/op (%+.1f%%)",
				r.Arm, r.Rows, b.ProbeNsPerOp, r.ProbeNsPerOp, deltaPct))
		}
		fmt.Printf("vs %s: %-7s rows=%-7d  %8.1f -> %8.1f ns/op  %+6.1f%%  %s\n",
			baselinePath, r.Arm, r.Rows, b.ProbeNsPerOp, r.ProbeNsPerOp, deltaPct, verdict)
	}
	if compared == 0 {
		return fmt.Errorf("no comparable (arm, rows) entries in %s", baselinePath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("probe regressions vs %s:\n  %s", baselinePath, strings.Join(regressions, "\n  "))
	}
	return nil
}
