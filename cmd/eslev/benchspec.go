package main

// bench -speculation: the consistency-level latency/overhead benchmark
// behind BENCH_SPECULATION.json.
//
// One windowed aggregate runs over the same disordered feed (slack 500ms) at
// each consistency level. Two properties are measured and gated:
//
//   - First-answer latency, in event time: how far the arrival clock has
//     advanced past a row's timestamp when the first record for that input
//     reaches the sink — a strict final, or a speculative assertion. STRICT
//     rows wait out the full reorder slack; FAST rows emit on arrival.
//     Corrections (late finals re-emitted after a retraction) are not first
//     answers; they are reported separately as the retraction rate. Gate:
//     FAST p99 must be at most -spec-max-p99-ratio (default 0.5) of STRICT
//     p99.
//   - Retraction overhead, in wall time: the FAST arm also runs on a clean
//     in-order copy of the feed — same speculation machinery, but every
//     assertion confirms and nothing retracts. The ns/event delta between
//     the disordered and clean FAST runs is the price of the compensation
//     path (retraction emission, reconciler churn, re-assertion). Gate: at
//     most -spec-max-overhead percent (default 15).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/esl"
	"repro/internal/spec"
	"repro/internal/stream"
)

const (
	specBenchSlack = 500 * time.Millisecond
	specBenchStep  = 10 * time.Millisecond
	// Eight tags at a 10ms step put same-tag readings 80ms apart: a delay
	// drawn up to 200ms displaces a reading past one or two same-tag
	// successors, so a real fraction of the per-tag counts assert wrong and
	// must be retracted — without making every assertion wrong the way a
	// cross-tag window would.
	specBenchTags = 8
	// Disorder delay is bounded by 2/5 of the slack: deep enough to force
	// retractions, shallow enough that FAST arrival latency stays well under
	// the strict slack wait the p99 gate compares against.
	specBenchMaxDelay = specBenchSlack * 2 / 5
	specBenchDisorder = 0.25
)

type specBenchResult struct {
	Arm          string  `json:"arm"` // consistency level, lower-case
	Events       int     `json:"events"`
	NsPerEvent   float64 `json:"ns_per_event"`
	Rows         int     `json:"rows"` // records delivered (incl. retractions)
	Asserted     uint64  `json:"asserted"`
	Retracted    uint64  `json:"retracted"`
	LatencyP50Ms float64 `json:"latency_p50_ms"` // event-time emission latency
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

type specBenchReport struct {
	CPUs               int               `json:"cpus"`
	Events             int               `json:"events"`
	SlackMs            float64           `json:"slack_ms"`
	DisorderFrac       float64           `json:"disorder_frac"`
	Results            []specBenchResult `json:"results"`
	FastCleanNsPerEv   float64           `json:"fast_clean_ns_per_event"` // FAST arm, in-order feed
	P99Ratio           float64           `json:"p99_ratio_fast_vs_strict"`
	RetractOverheadPct float64           `json:"retraction_overhead_pct"`
	GateMaxP99Ratio    float64           `json:"gate_max_p99_ratio"`
	GateMaxOverheadPct float64           `json:"gate_max_overhead_pct"`
}

// specBenchInput is the arrival sequence: (event time, tag, n) in perturbed
// arrival order. Deterministic for a given events count.
type specBenchInput struct {
	ts  stream.Timestamp
	tag int
	n   int64
}

func specBenchFeed(events int, disordered bool) []specBenchInput {
	type keyed struct {
		key stream.Timestamp
		ord int
		in  specBenchInput
	}
	rng := rand.New(rand.NewSource(99))
	arr := make([]keyed, events)
	for i := 0; i < events; i++ {
		ts := stream.TS(time.Duration(i+1) * specBenchStep)
		key := ts
		if disordered && rng.Float64() < specBenchDisorder {
			key = ts.Add(time.Duration(rng.Int63n(int64(specBenchMaxDelay))))
		}
		arr[i] = keyed{key: key, ord: i, in: specBenchInput{ts: ts, tag: i % specBenchTags, n: int64(i)}}
	}
	sort.Slice(arr, func(i, j int) bool {
		if arr[i].key != arr[j].key {
			return arr[i].key < arr[j].key
		}
		return arr[i].ord < arr[j].ord
	})
	out := make([]specBenchInput, events)
	for i, k := range arr {
		out[i] = k.in
	}
	return out
}

// specBenchArm runs one (level, feed) combination and reports best-of-reps
// wall time plus the deterministic latency/record profile of the last pass.
func specBenchArm(level spec.Level, feed []specBenchInput, reps int) (specBenchResult, error) {
	res := specBenchResult{Arm: level.String(), Events: len(feed)}
	sql := `SELECT tagid, COUNT(*), SUM(n) FROM s GROUP BY tagid`
	if level != spec.Strict {
		sql += " CONSISTENCY " + level.String()
	}
	bestNs := 0.0
	for rep := 0; rep < reps; rep++ {
		e := esl.New(esl.WithSlack(specBenchSlack))
		if _, err := e.Exec(`CREATE STREAM s(tagid, n);`); err != nil {
			return res, err
		}
		// arrival tracks the feed clock; serial callbacks run on the pushing
		// goroutine, so a plain variable is race-free.
		var arrival stream.Timestamp
		var lats []int64
		rows, asserted, retracted := 0, uint64(0), uint64(0)
		if _, err := e.RegisterQuery("bench", sql, func(r esl.Row) {
			rows++
			pol, seq, _ := esl.RecordTags(r)
			switch {
			case pol == spec.Retract:
				retracted++
				return // cancels an earlier answer; not an emission
			case pol == spec.Assert:
				asserted++
			case seq != 0:
				return // correction: a late final re-issued after a retraction
			}
			lat := int64(arrival) - int64(r.TS)
			if lat < 0 {
				lat = 0
			}
			lats = append(lats, lat)
		}); err != nil {
			return res, err
		}
		schema, _ := e.StreamSchema("s")
		start := time.Now()
		for _, in := range feed {
			if in.ts > arrival {
				arrival = in.ts
			}
			t, err := stream.NewTuple(schema, in.ts, stream.Int(int64(in.tag)), stream.Int(in.n))
			if err != nil {
				return res, err
			}
			if err := e.PushTuple("s", t); err != nil {
				return res, err
			}
		}
		if err := e.Drain(); err != nil {
			return res, err
		}
		ns := float64(time.Since(start)) / float64(len(feed))
		if rep == 0 || ns < bestNs {
			bestNs = ns
		}
		if rep == reps-1 {
			res.Rows, res.Asserted, res.Retracted = rows, asserted, retracted
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			pct := func(p float64) float64 {
				if len(lats) == 0 {
					return 0
				}
				i := int(p * float64(len(lats)-1))
				return float64(lats[i]) / float64(time.Millisecond)
			}
			res.LatencyP50Ms, res.LatencyP99Ms = pct(0.50), pct(0.99)
		}
	}
	res.NsPerEvent = bestNs
	return res, nil
}

// runBenchSpeculation sweeps STRICT, MIDDLE, and FAST over the disordered
// feed (plus FAST over a clean feed for the retraction-overhead delta),
// writes BENCH_SPECULATION.json, and enforces the two gates.
func runBenchSpeculation(events, reps int, jsonPath string, maxP99Ratio, maxOverhead float64) error {
	if reps < 1 {
		reps = 1
	}
	report := specBenchReport{
		CPUs:    runtime.NumCPU(),
		Events:  events,
		SlackMs: float64(specBenchSlack) / float64(time.Millisecond),

		DisorderFrac:       specBenchDisorder,
		GateMaxP99Ratio:    maxP99Ratio,
		GateMaxOverheadPct: maxOverhead,
	}
	fmt.Printf("cpus=%d events=%d slack=%s disorder=%.0f%% (delay <= %s)\n",
		report.CPUs, events, specBenchSlack, 100*specBenchDisorder, specBenchMaxDelay)
	disordered := specBenchFeed(events, true)
	var strict, fast specBenchResult
	for _, level := range []spec.Level{spec.Strict, spec.Middle, spec.Fast} {
		r, err := specBenchArm(level, disordered, reps)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, r)
		fmt.Printf("%-7s %8.0f ns/event   latency p50 %7.1fms p99 %7.1fms   rows=%d asserted=%d retracted=%d\n",
			r.Arm, r.NsPerEvent, r.LatencyP50Ms, r.LatencyP99Ms, r.Rows, r.Asserted, r.Retracted)
		switch level {
		case spec.Strict:
			strict = r
		case spec.Fast:
			fast = r
		}
	}
	clean, err := specBenchArm(spec.Fast, specBenchFeed(events, false), reps)
	if err != nil {
		return err
	}
	report.FastCleanNsPerEv = clean.NsPerEvent
	if clean.Retracted != 0 {
		return fmt.Errorf("clean in-order FAST run retracted %d assertions; the overhead delta is not attributable to retractions", clean.Retracted)
	}

	if strict.LatencyP99Ms > 0 {
		report.P99Ratio = fast.LatencyP99Ms / strict.LatencyP99Ms
	}
	if clean.NsPerEvent > 0 {
		report.RetractOverheadPct = (fast.NsPerEvent - clean.NsPerEvent) / clean.NsPerEvent * 100
	}
	fmt.Printf("fast/strict p99 ratio: %.2f (gate <= %.2f)\n", report.P99Ratio, maxP99Ratio)
	fmt.Printf("retraction overhead:   %+.1f%% vs clean-feed FAST %.0f ns/event (gate <= %.0f%%)\n",
		report.RetractOverheadPct, clean.NsPerEvent, maxOverhead)

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eslev: wrote %s\n", jsonPath)
	}
	if maxP99Ratio > 0 && report.P99Ratio > maxP99Ratio {
		return fmt.Errorf("FAST p99 %.1fms exceeds %.2fx STRICT p99 %.1fms",
			fast.LatencyP99Ms, maxP99Ratio, strict.LatencyP99Ms)
	}
	if maxOverhead > 0 && report.RetractOverheadPct > maxOverhead {
		return fmt.Errorf("retraction overhead %.1f%% exceeds %.0f%% gate", report.RetractOverheadPct, maxOverhead)
	}
	if fast.Retracted == 0 {
		return fmt.Errorf("disordered FAST run produced no retractions; the bench is not exercising compensation")
	}
	return nil
}
