GO ?= go

.PHONY: ci fmt-check vet build test chaos-soak recover-soak cluster-soak failover-soak spec-soak bench-smoke bench-json bench-compare bench-vectorized bench-vectorized-compare bench-multiquery bench-multiquery-compare bench-recovery bench-cluster bench-failover bench-db bench-db-json bench-speculation perf-trajectory

ci: fmt-check vet build test chaos-soak recover-soak cluster-soak failover-soak spec-soak bench-smoke perf-trajectory

fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Fault-injection soak: 1M events through the serial and sharded engines
# with disorder, duplication, corruption, late tuples, and injected UDF
# panics; fails on any output divergence or dead-letter accounting drift.
chaos-soak:
	$(GO) run ./cmd/eslev chaos -events 1000000 -shards 1
	$(GO) run ./cmd/eslev chaos -events 1000000 -shards 4
	$(GO) run ./cmd/eslev chaos -events 500000 -shards 1 -fanout 64

# Crash-recovery soak: 500k events through the extended operator workload
# (all pairing modes, star, EXCEPTION_SEQ timers, transducer chain), killing
# the perturbed engine every 60k offered readings and recovering it from the
# latest snapshot plus journal replay; fails unless output is row-for-row
# identical to the uninterrupted baseline and the dead-letter accounting
# identity still balances.
recover-soak:
	$(GO) run ./cmd/eslev chaos -events 500000 -shards 1 -extended -kill-every 60000
	$(GO) run ./cmd/eslev chaos -events 500000 -shards 4 -extended -kill-every 60000

# Multi-process loopback soak: spawn real `eslev node` processes at 1, 2,
# and 4 nodes, run the randomized soak workload (all pairing modes, star,
# aggregates, a transducer, heartbeats) through `cluster.Client`, and fail
# unless output is row-for-row identical to the serial engine AND the
# transport accounting identity is exact (every tuple/beat/row the feed
# sent equals what the nodes report having seen). The second run varies
# node-local shards, flush threshold, and seed.
cluster-soak:
	$(GO) run ./cmd/eslev cluster-soak -nodes 1,2,4 -events 50000
	$(GO) run ./cmd/eslev cluster-soak -nodes 2,4 -events 30000 -shards 2 -batch 64 -seed 7

# Kill-a-node fail-over soak: SIGKILL live node processes mid-feed and fail
# unless the surviving cluster's output stays row-for-row identical to the
# serial engine, the accounting identity holds, and every recovery restored
# a shipped checkpoint (no genesis replays). The matrix covers a non-zero
# victim, node 0 (the exact-clock anchor) under sharding, a 4-node kill,
# and back-to-back kills that leave half the fleet dead.
failover-soak:
	$(GO) run ./cmd/eslev cluster-soak -nodes 2 -events 15000 \
		-kill-every 6000 -kill-nodes 1 -checkpoint-every 4
	$(GO) run ./cmd/eslev cluster-soak -nodes 2 -events 15000 -shards 2 -batch 64 -seed 7 \
		-kill-every 6000 -kill-nodes 0 -checkpoint-every 4
	$(GO) run ./cmd/eslev cluster-soak -nodes 4 -events 20000 \
		-kill-every 8000 -kill-nodes 0 -checkpoint-every 4
	$(GO) run ./cmd/eslev cluster-soak -nodes 4 -events 20000 \
		-kill-every 5000 -kill-nodes 3,1 -checkpoint-every 4

# Speculation soak: the full fault mix plus the bursty LateHeavy disorder
# profile (20-30% of readings delayed near the slack bound, clustered by
# reader) with every base-stream query running FAST or MIDDLE. Fails unless
# the compensated record stream — retractions folded against their
# assertions — is row-for-row identical to the strict baseline, and the
# run actually exercised speculation (assertions emitted). The third run
# adds crash/recovery: in-flight assertions must survive snapshot restore
# and retract correctly after replay.
spec-soak:
	$(GO) run ./cmd/eslev chaos -events 500000 -consistency FAST -late-heavy
	$(GO) run ./cmd/eslev chaos -events 500000 -consistency MIDDLE -late-heavy
	$(GO) run ./cmd/eslev chaos -events 300000 -consistency FAST -late-heavy -kill-every 60000

# Recovery overhead gate: steady-state throughput with the journal and
# automatic checkpoints enabled must stay within 10% of the undurable
# baseline at the default interval. Records the measurement (plus snapshot
# size and restore latency) in BENCH_RECOVERY.json.
bench-recovery:
	$(GO) run ./cmd/eslev bench -recovery -events 50000 -max-overhead 10 \
		-bench-json BENCH_RECOVERY.json

# A fast pass over every benchmark family to catch bit-rot without paying
# for full measurement runs.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 50x .

# The sharded-scaling sweep as a machine-readable artifact.
bench-json:
	$(GO) run ./cmd/eslev bench -shards 1,2,4,8 -bench-json BENCH_SHARDED.json

# Smoke-level regression gate: re-run the EX6/EX7 bench families on HEAD
# and fail if ns/event regresses more than 15% against the recorded
# BENCH_SHARDED.json baseline. Fewer events than the full sweep keeps it
# fast enough for ci; ns/event is count-insensitive at this scale.
bench-compare:
	$(GO) run ./cmd/eslev bench -shards 1,2 -events 20000 \
		-baseline BENCH_SHARDED.json -max-regress 15

# The vectorized-ingestion sweep (batch size x shard count) as a
# machine-readable artifact.
bench-vectorized:
	$(GO) run ./cmd/eslev bench -shards 1,4 -batch 1,32,256,1024 \
		-bench-json BENCH_VECTORIZED.json

# The multi-query fan-out sweep (registered-query count x prefix-share
# ratio; merged vs independent plans, plus a scan-all dispatch control
# below 1024 queries) as a machine-readable artifact.
bench-multiquery:
	$(GO) run ./cmd/eslev bench -multiquery -queries 1,64,256,1024 -share 0,50,90 \
		-bench-json BENCH_MULTIQUERY.json

# Regression gate for the multi-query dispatch paths: re-run the mid-size
# tiers on HEAD — merged, independent, and scan-all arms at every recorded
# share ratio — and fail if ns/event regresses more than 15% against the
# recorded BENCH_MULTIQUERY.json baseline. Runs at the same event count as
# the baseline — fan-out ns/event is scale-sensitive, so a reduced-scale
# rerun would compare apples to oranges. queries=1 is excluded: it is the
# shortest configuration and the noisiest, and the gate protects the
# fan-out paths, which it does not exercise. queries=1024 is excluded for
# run time (its independent arm alone is ~45s).
bench-multiquery-compare:
	$(GO) run ./cmd/eslev bench -multiquery -queries 64,256 -share 0,50,90 -events 50000 \
		-baseline BENCH_MULTIQUERY.json -max-regress 15

# Regression gate for batched ingestion: spot-check two batch sizes per
# shard count against the recorded BENCH_VECTORIZED.json baseline. Runs at
# the baseline's event count — ex6-seq ns/event is warm-up-sensitive, so a
# reduced-scale rerun reads 15-30% high against a 50k-event recording.
bench-vectorized-compare:
	$(GO) run ./cmd/eslev bench -shards 1,4 -batch 32,256 -events 50000 \
		-baseline BENCH_VECTORIZED.json -max-regress 15

# Cluster scale-out gate: spawn loopback node processes and measure the
# keyed fan-out workload (4096 reader-homed queries) at 1/2/4 nodes against
# the best single-process arm. Fails below 2x aggregate throughput at 4
# nodes or above 15% wire overhead at 1 node; records the measurement in
# BENCH_CLUSTER.json. Best-of-3 passes per arm keep the gate stable on a
# noisy box.
bench-cluster:
	$(GO) run ./cmd/eslev bench -cluster -events 60000 \
		-min-speedup 2 -max-wire-overhead 15 -bench-json BENCH_CLUSTER.json

# Fail-over gate: checkpoint shipping must cost at most 15% steady-state
# throughput, and a SIGKILL of node 0 mid-feed must recover through the
# snapshot-restore path with zero lost or duplicated rows (all three arms
# report identical match counts). Records overhead, recovery time to the
# first post-fail-over row, and the replay window in BENCH_FAILOVER.json.
bench-failover:
	$(GO) run ./cmd/eslev bench -failover -events 40000 \
		-max-overhead 15 -bench-json BENCH_FAILOVER.json

# The stream-DB join probe sweep (legacy vs MVCC arms at 1k/30k/300k rows)
# as a machine-readable artifact. The MVCC indexed probe must measure zero
# allocations per op or the run fails.
bench-db-json:
	$(GO) run ./cmd/eslev bench -db -bench-json BENCH_DB.json

# Regression gate for the stream-DB join hot path: re-run on HEAD and fail
# if the MVCC arm's indexed-probe ns/op regresses more than 15% against the
# recorded BENCH_DB.json baseline (or if the MVCC probe allocates). Only
# the live arm is gated — the legacy arm is frozen comparison code whose
# alloc-heavy probes swing with GC/machine state. The 300k-row tier is
# recorded by bench-db-json but not gated: probes there are
# DRAM-latency-bound and swing ±40% run-to-run on a 1-CPU box. The margin
# is 25%, not the usual 15%: even min-of-3 probe passes drift ~15-18%
# between capture sessions on a shared single-CPU box, and the regression
# this gate exists to catch — a reintroduced lock, allocation, or index
# walk — costs well over 25%.
bench-db:
	$(GO) run ./cmd/eslev bench -db -db-sizes 1000,30000 -db-probes 100000 \
		-baseline BENCH_DB.json -max-regress 25

# Speculation latency/overhead gate: FAST first-answer p99 latency must be
# at most half of STRICT's watermark wait, and the retraction path must
# cost at most 15% wall time over a clean-feed FAST run. Records the
# measurement in BENCH_SPECULATION.json.
bench-speculation:
	$(GO) run ./cmd/eslev bench -speculation -events 30000 \
		-spec-max-p99-ratio 0.5 -spec-max-overhead 15 \
		-bench-json BENCH_SPECULATION.json

# Perf-trajectory check: every recorded BENCH_*.json baseline re-validated
# on HEAD in one run — sharded scaling (BENCH_SHARDED), vectorized
# ingestion (BENCH_VECTORIZED), multi-query dispatch incl. the merged path
# (BENCH_MULTIQUERY), durability overhead (BENCH_RECOVERY), cluster
# scale-out (BENCH_CLUSTER), fail-over recovery (BENCH_FAILOVER), the
# stream-DB join probe hot path (BENCH_DB), and the consistency-level
# latency/retraction gates (BENCH_SPECULATION).
perf-trajectory: bench-compare bench-vectorized-compare bench-multiquery-compare bench-recovery bench-cluster bench-failover bench-db bench-speculation
