GO ?= go

.PHONY: ci fmt-check vet build test bench-smoke bench-json

ci: fmt-check vet build test bench-smoke

fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# A fast pass over every benchmark family to catch bit-rot without paying
# for full measurement runs.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 50x .

# The sharded-scaling sweep as a machine-readable artifact.
bench-json:
	$(GO) run ./cmd/eslev bench -shards 1,2,4,8 -bench-json BENCH_SHARDED.json
